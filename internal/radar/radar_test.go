package radar

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"ros/internal/dsp"
	"ros/internal/em"
	"ros/internal/geom"
)

func TestTI1443Parameters(t *testing.T) {
	c := TI1443()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sec 7.1 defaults.
	if d := c.ChirpDuration(); math.Abs(d-51.2e-6) > 1e-9 {
		t.Errorf("chirp duration = %g s, want 51.2 us", d)
	}
	if b := c.SweptBandwidth(); math.Abs(b-3.3792e9) > 1e6 {
		t.Errorf("swept bandwidth = %g Hz, want ~3.38 GHz", b)
	}
	if r := c.RangeResolution(); math.Abs(r-0.0444) > 0.001 {
		t.Errorf("range resolution = %g m, want ~4.4 cm", r)
	}
	// Sec 7.1: "4 Rx antennas are used to achieve a beamwidth around of
	// 28.6 deg".
	if bw := geom.Deg(c.Beamwidth()); math.Abs(bw-28.6) > 0.5 {
		t.Errorf("beamwidth = %g deg, want ~28.6", bw)
	}
	if mr := c.MaxRange(); mr < 10 || mr > 12 {
		t.Errorf("max range = %g m, want ~11.4", mr)
	}
	// Noise per bin equals the paper's -62 dBm floor.
	if nf := em.DBm(c.NoisePerBin()); math.Abs(nf-(-62)) > 0.5 {
		t.Errorf("noise per bin = %g dBm, want ~-62", nf)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := TI1443()
	mutations := []func(*Config){
		func(c *Config) { c.CenterFrequency = 0 },
		func(c *Config) { c.Slope = 0 },
		func(c *Config) { c.SampleRate = 0 },
		func(c *Config) { c.Samples = 4 },
		func(c *Config) { c.FrameRate = 0 },
		func(c *Config) { c.NumRx = 0 },
		func(c *Config) { c.RxSpacing = 0 },
		func(c *Config) { c.ADCBits = -1 },
		func(c *Config) { c.ADCBits = 31 },
	}
	for i, mut := range mutations {
		c := base
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSynthPlanCached(t *testing.T) {
	c := TI1443()
	if c.NewSynthPlan() != c.NewSynthPlan() {
		t.Error("identical configs yielded distinct plans")
	}
	c2 := c
	c2.Samples = 200
	if c.NewSynthPlan() == c2.NewSynthPlan() {
		t.Error("distinct configs shared a plan")
	}
}

func TestSingleScattererRangeAndAmplitude(t *testing.T) {
	c := TI1443()
	amp := 1e-4
	want := 3.0
	f := c.Synthesize([]Scatterer{{Range: want, Azimuth: 0, Amplitude: amp}}, nil)
	rp := c.RangeProfile(f)
	mag := dsp.Magnitude(rp.Bins[0])
	_, peak := dsp.Max(mag)
	got := float64(peak) * rp.BinSize
	if math.Abs(got-want) > rp.BinSize {
		t.Errorf("range peak at %g m, want %g", got, want)
	}
	// Calibrated amplitude at the peak (windowless FFT scalloping can cost
	// up to ~3.9 dB; the scatterer is near a bin center here).
	if mag[peak] < 0.6*amp || mag[peak] > 1.05*amp {
		t.Errorf("peak magnitude = %g, want ~%g", mag[peak], amp)
	}
}

func TestAoAEstimation(t *testing.T) {
	c := TI1443()
	for _, azDeg := range []float64{-30, -10, 0, 15, 40} {
		az := geom.Rad(azDeg)
		f := c.Synthesize([]Scatterer{{Range: 4, Azimuth: az, Amplitude: 1e-4}}, nil)
		rp := c.RangeProfile(f)
		bin := c.BinForRange(4)
		angles := c.ScanAngles()
		spec := c.AoASpectrum(rp, bin, angles)
		_, idx := dsp.Max(spec)
		got := geom.Deg(angles[idx])
		if math.Abs(got-azDeg) > 3 {
			t.Errorf("AoA = %g deg, want %g", got, azDeg)
		}
	}
}

func TestTwoScatterersResolvedInRange(t *testing.T) {
	c := TI1443()
	f := c.Synthesize([]Scatterer{
		{Range: 3, Azimuth: 0, Amplitude: 1e-4},
		{Range: 5, Azimuth: 0, Amplitude: 1e-4},
	}, nil)
	rp := c.RangeProfile(f)
	mag := dsp.Magnitude(rp.Bins[0])
	peaks := dsp.FindPeaks(mag, 0.3e-4, 3)
	if len(peaks) < 2 {
		t.Fatalf("found %d peaks, want 2", len(peaks))
	}
	r1 := peaks[0].Pos * rp.BinSize
	r2 := peaks[1].Pos * rp.BinSize
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	if math.Abs(r1-3) > 0.1 || math.Abs(r2-5) > 0.1 {
		t.Errorf("peaks at %g, %g m; want 3, 5", r1, r2)
	}
}

func TestBeamformRSSRecoversPower(t *testing.T) {
	c := TI1443()
	amp := 2e-4
	az := geom.Rad(20)
	f := c.Synthesize([]Scatterer{{Range: 4, Azimuth: az, Amplitude: amp}}, nil)
	got := c.BeamformRSS(f, 4, az)
	want := amp * amp
	if got < 0.5*want || got > 1.1*want {
		t.Errorf("beamformed power = %g, want ~%g", got, want)
	}
	// Steering away drops the power.
	off := c.BeamformRSS(f, 4, az+c.Beamwidth())
	if off > got/2 {
		t.Errorf("off-beam power %g not suppressed vs %g", off, got)
	}
}

func TestNoiseFloorCalibration(t *testing.T) {
	c := TI1443()
	rng := rand.New(rand.NewSource(1))
	f := c.Synthesize(nil, rng)
	rp := c.RangeProfile(f)
	// Average per-bin noise power across channels and bins should match
	// NoisePerBin within statistical tolerance.
	var sum float64
	var count int
	for _, ch := range rp.Bins {
		for _, v := range ch {
			sum += real(v)*real(v) + imag(v)*imag(v)
			count++
		}
	}
	got := sum / float64(count)
	// The Hann range window widens the equivalent noise bandwidth by 1.5x.
	want := c.NoisePerBin() * 1.5
	if got < 0.7*want || got > 1.4*want {
		t.Errorf("measured noise per bin %g, want ~%g", got, want)
	}
}

func TestSNRAtNoiseFloorTarget(t *testing.T) {
	// A scatterer whose amplitude equals the noise floor must come out at
	// ~0 dB SNR per bin; one 14 dB above must be clearly visible.
	c := TI1443()
	rng := rand.New(rand.NewSource(2))
	floorAmp := math.Sqrt(c.NoisePerBin())
	strong := floorAmp * dsp.AmpFromDB(14)
	f := c.Synthesize([]Scatterer{{Range: 4, Azimuth: 0, Amplitude: strong}}, rng)
	rss := c.BeamformRSS(f, 4, 0)
	snr := em.DB(rss / (c.NoisePerBin() / float64(c.NumRx)))
	// Beamforming averages channels: noise drops by NumRx, signal stays.
	if snr < 10 || snr > 25 {
		t.Errorf("measured SNR = %g dB for a 14 dB target (+6 dB array gain)", snr)
	}
}

func TestPointCloudFindsObjects(t *testing.T) {
	c := TI1443()
	rng := rand.New(rand.NewSource(3))
	amp := math.Sqrt(c.NoisePerBin()) * dsp.AmpFromDB(20)
	f := c.Synthesize([]Scatterer{
		{Range: 3, Azimuth: geom.Rad(10), Amplitude: amp},
		{Range: 5.5, Azimuth: geom.Rad(-25), Amplitude: amp},
	}, rng)
	dets := c.PointCloud(f, DetectOptions{})
	if len(dets) < 2 {
		t.Fatalf("detected %d points, want >= 2", len(dets))
	}
	found3, found55 := false, false
	for _, d := range dets {
		if math.Abs(d.Range-3) < 0.15 && math.Abs(geom.Deg(d.Azimuth)-10) < 6 {
			found3 = true
		}
		if math.Abs(d.Range-5.5) < 0.15 && math.Abs(geom.Deg(d.Azimuth)+25) < 6 {
			found55 = true
		}
	}
	if !found3 || !found55 {
		t.Errorf("objects not both detected: %+v", dets)
	}
}

func TestPointCloudEmptyOnNoise(t *testing.T) {
	c := TI1443()
	rng := rand.New(rand.NewSource(4))
	f := c.Synthesize(nil, rng)
	dets := c.PointCloud(f, DetectOptions{ThresholdDB: 15})
	if len(dets) > 2 {
		t.Errorf("noise-only frame produced %d detections", len(dets))
	}
}

func TestDopplerNegligible(t *testing.T) {
	// Sec 7.3: Doppler shifts at automotive speeds barely move the range
	// estimate (19 kHz at 80 mph vs MHz-scale beat frequencies).
	c := TI1443()
	static := c.Synthesize([]Scatterer{{Range: 4, Azimuth: 0, Amplitude: 1e-4}}, nil)
	moving := c.Synthesize([]Scatterer{{Range: 4, Azimuth: 0, Amplitude: 1e-4, RadialVelocity: 35}}, nil)
	rpS := c.RangeProfile(static)
	rpM := c.RangeProfile(moving)
	_, pS := dsp.Max(dsp.Magnitude(rpS.Bins[0]))
	_, pM := dsp.Max(dsp.Magnitude(rpM.Bins[0]))
	if abs := pS - pM; abs < -1 || abs > 1 {
		t.Errorf("Doppler moved the range peak by %d bins", pM-pS)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	c := TI1443()
	gen := func() Frame {
		return c.Synthesize([]Scatterer{{Range: 3, Azimuth: 0.2, Amplitude: 1e-4}},
			rand.New(rand.NewSource(9)))
	}
	a, b := gen(), gen()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different frames")
		}
	}
}

func TestSynthesizeSkipsDegenerateScatterers(t *testing.T) {
	c := TI1443()
	f := c.Synthesize([]Scatterer{
		{Range: 0, Azimuth: 0, Amplitude: 1},
		{Range: 3, Azimuth: 0, Amplitude: 0},
		{Range: -1, Azimuth: 0, Amplitude: 1},
	}, nil)
	if p := ChannelPower(f, 0); p != 0 {
		t.Errorf("degenerate scatterers injected power %g", p)
	}
}

func TestBinForRangeClamps(t *testing.T) {
	c := TI1443()
	if b := c.BinForRange(-5); b != 0 {
		t.Errorf("negative range bin = %d", b)
	}
	if b := c.BinForRange(1e9); b != c.Samples-1 {
		t.Errorf("huge range bin = %d", b)
	}
}

func TestRangeProfilePanicsOnMismatch(t *testing.T) {
	c := TI1443()
	defer func() {
		if recover() == nil {
			t.Error("mismatched frame accepted")
		}
	}()
	c.RangeProfile(Frame{Data: make([]complex128, c.Samples), NumRx: 1, Samples: c.Samples})
}

func TestPhaseCoherenceAcrossFrames(t *testing.T) {
	// The scene decoder relies on the carrier phase 4*pi*d/lambda being
	// encoded in the range bin; two frames at ranges differing by
	// lambda/4 must show a ~pi phase difference at the peak bin.
	c := TI1443()
	lambda := c.Wavelength()
	d := 4.0
	f1 := c.Synthesize([]Scatterer{{Range: d, Azimuth: 0, Amplitude: 1e-4}}, nil)
	f2 := c.Synthesize([]Scatterer{{Range: d + lambda/4, Azimuth: 0, Amplitude: 1e-4}}, nil)
	bin := c.BinForRange(d)
	p1 := cmplx.Phase(c.RangeProfile(f1).Bins[0][bin])
	p2 := cmplx.Phase(c.RangeProfile(f2).Bins[0][bin])
	diff := math.Abs(geom.WrapPi(p1 - p2))
	if math.Abs(diff-math.Pi) > 0.3 {
		t.Errorf("phase difference = %g rad, want ~pi", diff)
	}
}

func TestADCQuantization(t *testing.T) {
	c := TI1443()
	c.ADCBits = 12
	rng := rand.New(rand.NewSource(21))
	amp := math.Sqrt(c.NoisePerBin()) * dsp.AmpFromDB(20)
	f12 := c.Synthesize([]Scatterer{{Range: 3, Amplitude: amp}}, rng)
	rss12 := c.BeamformRSS(f12, 3, 0)

	ideal := TI1443()
	fIdeal := ideal.Synthesize([]Scatterer{{Range: 3, Amplitude: amp}}, rand.New(rand.NewSource(21)))
	rssIdeal := ideal.BeamformRSS(fIdeal, 3, 0)
	// 12-bit conversion is transparent at these SNRs.
	if d := math.Abs(em.DB(rss12 / rssIdeal)); d > 0.2 {
		t.Errorf("12-bit ADC shifted the reading by %g dB", d)
	}

	// A 2-bit converter visibly raises the floor. (Seed chosen so the peak
	// survives: at 2 bits that is realization-dependent, and the f32 noise
	// lane draws a different realization than the pre-f32 stream did.)
	c2 := TI1443()
	c2.ADCBits = 2
	f2 := c2.Synthesize([]Scatterer{{Range: 3, Amplitude: amp}}, rand.New(rand.NewSource(1)))
	rp := c2.RangeProfile(f2)
	mag := dsp.Magnitude(rp.Bins[0])
	_, peak := dsp.Max(mag)
	if peak != c2.BinForRange(3) {
		t.Errorf("2-bit ADC lost the target peak (at bin %d)", peak)
	}
}

func TestQuantizeZeroFrame(t *testing.T) {
	c := TI1443()
	c.ADCBits = 8
	f := c.Synthesize(nil, nil) // all-zero, no noise
	for _, v := range f.Data {
		if v != 0 {
			t.Fatal("quantizing a zero frame produced nonzero samples")
		}
	}
}
