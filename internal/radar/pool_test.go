package radar

import "testing"

// TestFramePoolReusesAcrossShapes pins the capacity-based reuse contract: a
// pooled buffer big enough for the request is resliced rather than dropped,
// so interleaving two configurations recycles one high-water-mark buffer.
// The pre-fix exact-shape check dropped the buffer on every shape flip,
// costing a fresh allocation per frame.
func TestFramePoolReusesAcrossShapes(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	var fp framePool
	// Warm the pool to the high-water mark so the measured loop only ever
	// needs reuse.
	fp.put(fp.acquire(8, 512, true))

	allocs := testing.AllocsPerRun(100, func() {
		big := fp.acquire(8, 512, false)
		fp.put(big)
		small := fp.acquire(4, 256, true)
		fp.put(small)
	})
	// A GC between runs may flush the pool and force one reallocation;
	// anything beyond that means the shape flip stopped reusing.
	if allocs > 1 {
		t.Fatalf("interleaved two-shape acquire/release averaged %.1f allocs/run, want ~0", allocs)
	}
}

// TestFramePoolReshape checks that a reused buffer is correctly resliced:
// the channel views must tile the flat buffer for the new shape, and a zero
// request must actually clear the visible samples.
func TestFramePoolReshape(t *testing.T) {
	var fp framePool
	big := fp.acquire(6, 128, false)
	for i := range big.flat {
		big.flat[i] = complex(1, 1) // dirty the buffer
	}
	fp.put(big)

	b := fp.acquire(3, 64, true)
	if len(b.flat) != 3*64 {
		t.Fatalf("flat length = %d, want %d", len(b.flat), 3*64)
	}
	if len(b.views) != 3 {
		t.Fatalf("views = %d channels, want 3", len(b.views))
	}
	for k, v := range b.views {
		if len(v) != 64 {
			t.Fatalf("channel %d has %d samples, want 64", k, len(v))
		}
		if &v[0] != &b.flat[k*64] {
			t.Fatalf("channel %d view does not tile the flat buffer", k)
		}
	}
	for i, v := range b.flat {
		if v != 0 {
			t.Fatalf("zeroed buffer has %v at %d", v, i)
		}
	}
	fp.put(b)

	if b.home != &fp {
		t.Fatalf("pooled buffer is not homed to its pool")
	}
}
