package radar

import "testing"

// TestAcquireChannelsReusesAcrossShapes pins the capacity-based reuse
// contract: a pooled buffer big enough for the request is resliced rather
// than dropped, so interleaving two configurations recycles one
// high-water-mark buffer. The pre-fix exact-shape check dropped the buffer
// on every shape flip, costing a fresh allocation per frame.
func TestAcquireChannelsReusesAcrossShapes(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	// Warm the pool to the high-water mark so the measured loop only ever
	// needs reuse.
	warm := acquireChannels(8, 512, true)
	chanPool.Put(warm)

	allocs := testing.AllocsPerRun(100, func() {
		big := acquireChannels(8, 512, false)
		chanPool.Put(big)
		small := acquireChannels(4, 256, true)
		chanPool.Put(small)
	})
	// A GC between runs may flush the pool and force one reallocation;
	// anything beyond that means the shape flip stopped reusing.
	if allocs > 1 {
		t.Fatalf("interleaved two-shape acquire/release averaged %.1f allocs/run, want ~0", allocs)
	}
}

// TestAcquireChannelsReshape checks that a reused buffer is correctly
// resliced: the channel views must tile the flat buffer for the new shape,
// and a zero request must actually clear the visible samples.
func TestAcquireChannelsReshape(t *testing.T) {
	big := acquireChannels(6, 128, false)
	for i := range big.flat {
		big.flat[i] = complex(1, 1) // dirty the buffer
	}
	chanPool.Put(big)

	b := acquireChannels(3, 64, true)
	if len(b.flat) != 3*64 {
		t.Fatalf("flat length = %d, want %d", len(b.flat), 3*64)
	}
	if len(b.views) != 3 {
		t.Fatalf("views = %d channels, want 3", len(b.views))
	}
	for k, v := range b.views {
		if len(v) != 64 {
			t.Fatalf("channel %d has %d samples, want 64", k, len(v))
		}
		if &v[0] != &b.flat[k*64] {
			t.Fatalf("channel %d view does not tile the flat buffer", k)
		}
	}
	for i, v := range b.flat {
		if v != 0 {
			t.Fatalf("zeroed buffer has %v at %d", v, i)
		}
	}
	chanPool.Put(b)
}
