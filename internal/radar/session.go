// Session is the radar layer's resource handle: the memoized state one
// radar+scene configuration accumulates — frame synthesis plans (with their
// pooled frame buffers) and beamforming steering tables — owned by whoever
// constructed the session instead of by the process. The package-level entry
// points (Config.NewSynthPlan, Config.Synthesize, the AoA helpers) remain as
// thin shims over one default session, so existing callers keep their
// process-lifetime behavior; servers juggling many configurations build one
// Session per handle and Clear it deterministically when the handle is
// retired.
package radar

import (
	"fmt"
	"math"

	"ros/internal/dsp"
	"ros/internal/em"
	"ros/internal/obs"
)

// Cache names a Session reports under, passed to the dsp.CacheGauge provider
// so an owning handle can label one shared gauge vector per cache instead of
// colliding on global gauge names.
const (
	CacheSynthPlans = "radar_synth_plan"
	CacheSteering   = "radar_steering"
)

// Session owns the radar memo caches for one configuration handle. Entries
// are immutable and safe for concurrent use; the session itself is safe for
// concurrent use by any number of goroutines.
type Session struct {
	// plans supplies the fused window+FFT plans synthesis plans capture.
	plans *dsp.PlanSet
	// synthPlans caches frame front-end plans per Config (Config is
	// comparable); a sweep re-reading the same radar reuses the
	// scene-static tables across reads.
	synthPlans *obs.CountedMap
	// steering caches beamforming steering tables per
	// (numRx, spacing, frequency).
	steering *obs.CountedMap
}

// NewSession returns an empty session drawing transform plans from the given
// set, with caches mirroring their entry counts into the gauges the provider
// hands out. A nil plans uses the default plan set.
func NewSession(plans *dsp.PlanSet, gauge dsp.CacheGauge) *Session {
	if plans == nil {
		plans = dsp.DefaultPlanSet()
	}
	return &Session{
		plans:      plans,
		synthPlans: obs.NewCountedMap(gauge(CacheSynthPlans)),
		steering:   obs.NewCountedMap(gauge(CacheSteering)),
	}
}

// PlanSet returns the dsp plan set this session draws transforms from.
func (s *Session) PlanSet() *dsp.PlanSet { return s.plans }

// SynthPlanFor validates the configuration once and returns the session's
// frame front-end plan for it, building it on first use. It panics on an
// invalid config, exactly as Config.Synthesize does.
//
// Two goroutines racing on a cold config both build a plan; LoadOrStore
// keeps exactly one. The loser's plan has already pre-warmed a pooled frame
// buffer, so the winner adopts the loser's pool contents instead of leaving
// them to the collector (and, worse in the pre-session design, instead of
// the loser handing out a plan whose buffers lived in a discarded pool).
func (s *Session) SynthPlanFor(c Config) *SynthPlan {
	if v, ok := s.synthPlans.Load(c); ok {
		return v.(*SynthPlan)
	}
	p := s.newSynthPlan(c)
	actual, loaded := s.synthPlans.LoadOrStore(c, p)
	winner := actual.(*SynthPlan)
	if loaded {
		winner.pool.adoptFrom(p.pool)
	}
	return winner
}

// newSynthPlan builds the frame front-end plan for c against this session's
// caches. See SynthPlan for the field semantics.
func (s *Session) newSynthPlan(c Config) *SynthPlan {
	if err := c.Validate(); err != nil {
		panic(fmt.Sprintf("radar: synthesis plan on invalid config: %v", err))
	}
	lambda := c.Wavelength()
	p := &SynthPlan{
		cfg:       c,
		lambda:    lambda,
		beatK:     2 * c.Slope / em.C,
		dopK:      2 / lambda,
		phaseK:    4 * math.Pi / lambda,
		stepK:     -2 * math.Pi / c.SampleRate,
		rxK:       2 * math.Pi * c.RxSpacing / lambda,
		sigma:     math.Sqrt(c.NoisePerBin()*float64(c.Samples)) / math.Sqrt2,
		rangePlan: s.plans.PlanFor(c.Samples, dsp.Hann),
		steer:     s.steeringFor(c),
		pool:      &framePool{},
	}
	if c.ADCBits > 0 {
		// Levels per polarity; Validate bounded ADCBits to (0, 30], so
		// the shift cannot overflow.
		p.adcLevels = float64(int(1) << (c.ADCBits - 1))
	}
	p.useF32 = c.ADCBits <= 14 && !c.ForceFloat64
	// Pre-warm one frame buffer so the first frame of a read does not pay
	// the high-water-mark allocation inside the synthesis loop.
	p.pool.put(newChanBuf(c.NumRx, c.Samples))
	return p
}

// steeringFor returns the session's cached steering table for the config's
// array geometry, computing it on first use.
func (s *Session) steeringFor(c Config) *steeringTable {
	key := steeringKey{numRx: c.NumRx, spacing: c.RxSpacing, freq: c.CenterFrequency}
	if v, ok := s.steering.Load(key); ok {
		return v.(*steeringTable)
	}
	t := newSteeringTable(c)
	if v, loaded := s.steering.LoadOrStore(key, t); loaded {
		return v.(*steeringTable)
	}
	return t
}

// Clear drops the session's memo caches — synthesis plans and steering
// tables — and zeroes their gauges. Plans already handed out stay valid
// (entries are immutable and each plan owns its frame pool); subsequent
// calls rebuild.
func (s *Session) Clear() {
	s.synthPlans.Clear()
	s.steering.Clear()
}
