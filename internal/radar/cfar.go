package radar

import (
	"fmt"

	"ros/internal/dsp"
)

// Cell-averaging CFAR (constant false-alarm rate) detection: the standard
// automotive alternative to the global median threshold in PointCloud. The
// noise level is estimated per cell from surrounding training cells
// (excluding guard cells around the cell under test), so detection stays
// calibrated when clutter raises the floor locally.

// CFAROptions tunes the detector.
type CFAROptions struct {
	// Guard is the number of guard cells on each side of the cell under
	// test (default 2).
	Guard int
	// Training is the number of training cells on each side beyond the
	// guards (default 8).
	Training int
	// ThresholdDB is the detection margin over the estimated noise
	// (default 12 dB).
	ThresholdDB float64
}

func (o *CFAROptions) defaults() {
	if o.Guard == 0 {
		o.Guard = 2
	}
	if o.Training == 0 {
		o.Training = 8
	}
	if o.ThresholdDB == 0 {
		o.ThresholdDB = 12
	}
}

// CFARDetect returns the indices of power cells exceeding the CA-CFAR
// threshold. Cells whose training window would leave the array use the
// available one-sided cells.
func CFARDetect(power []float64, opts CFAROptions) []int {
	opts.defaults()
	if opts.Guard < 0 || opts.Training < 1 {
		panic(fmt.Sprintf("radar: CFAR guard=%d training=%d", opts.Guard, opts.Training))
	}
	n := len(power)
	factor := dsp.FromDB(opts.ThresholdDB)
	var out []int
	for i := 0; i < n; i++ {
		sum := 0.0
		count := 0
		lo := i - opts.Guard - opts.Training
		hi := i + opts.Guard + opts.Training
		for j := lo; j <= hi; j++ {
			if j < 0 || j >= n {
				continue
			}
			if d := j - i; d >= -opts.Guard && d <= opts.Guard {
				continue // guard region, including the cell under test
			}
			sum += power[j]
			count++
		}
		if count == 0 {
			continue
		}
		noise := sum / float64(count)
		if noise <= 0 {
			noise = 1e-300
		}
		if power[i] > factor*noise {
			out = append(out, i)
		}
	}
	return out
}
