package radar

import (
	"errors"
	"testing"

	"ros/internal/roserr"
)

// TestConfigValidateRejections drives every rejection branch of
// Config.Validate and asserts the error is typed roserr.ErrConfig, so
// misconfiguration can never be confused with a runtime fault.
func TestConfigValidateRejections(t *testing.T) {
	if err := TI1443().Validate(); err != nil {
		t.Fatalf("TI1443 must validate: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero carrier", func(c *Config) { c.CenterFrequency = 0 }},
		{"negative carrier", func(c *Config) { c.CenterFrequency = -77e9 }},
		{"zero slope", func(c *Config) { c.Slope = 0 }},
		{"zero sample rate", func(c *Config) { c.SampleRate = 0 }},
		{"too few samples", func(c *Config) { c.Samples = 7 }},
		{"zero frame rate", func(c *Config) { c.FrameRate = 0 }},
		{"no rx antennas", func(c *Config) { c.NumRx = 0 }},
		{"zero rx spacing", func(c *Config) { c.RxSpacing = 0 }},
		{"negative adc bits", func(c *Config) { c.ADCBits = -1 }},
		{"oversized adc bits", func(c *Config) { c.ADCBits = 31 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := TI1443()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid config")
			}
			if !errors.Is(err, roserr.ErrConfig) {
				t.Fatalf("rejection not typed ErrConfig: %v", err)
			}
		})
	}
}

// TestMIMOConfigValidateRejections covers the TDM-MIMO and elevation
// extensions: every rejection must also be typed ErrConfig.
func TestMIMOConfigValidateRejections(t *testing.T) {
	if err := TI1443MIMO().Validate(); err != nil {
		t.Fatalf("TI1443MIMO must validate: %v", err)
	}
	if err := TI1443Elevation().Validate(); err != nil {
		t.Fatalf("TI1443Elevation must validate: %v", err)
	}
	cases := []struct {
		name string
		err  func() error
	}{
		{"no tx", func() error { m := TI1443MIMO(); m.NumTx = 0; return m.Validate() }},
		{"zero tx spacing", func() error { m := TI1443MIMO(); m.TxSpacing = 0; return m.Validate() }},
		{"zero elevation height", func() error { e := TI1443Elevation(); e.TxHeight = 0; return e.Validate() }},
		{"wrong elevation tx count", func() error { e := TI1443Elevation(); e.NumTx = 3; return e.Validate() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err()
			if err == nil {
				t.Fatal("Validate accepted an invalid config")
			}
			if !errors.Is(err, roserr.ErrConfig) {
				t.Fatalf("rejection not typed ErrConfig: %v", err)
			}
		})
	}
}
