package radar

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"ros/internal/dsp"
	"ros/internal/em"
)

// Scatterer is one point reflector as seen from the radar for one frame. The
// link budget (Eq 1, polarization coupling, atmospheric loss) is folded into
// Amplitude by the scene layer; the radar only turns geometry into signal.
type Scatterer struct {
	// Range is the radar-to-point distance in meters.
	Range float64
	// Azimuth is the angle of arrival measured from the array boresight in
	// radians.
	Azimuth float64
	// Amplitude is the linear received-signal amplitude, sqrt(watts),
	// referenced to a single post-range-FFT bin.
	Amplitude float64
	// Phase is an extra carrier phase in radians (e.g. from sub-bin range
	// offsets accumulated by the scene model).
	Phase float64
	// Elevation is the angle above the radar's horizontal plane in
	// radians; the azimuth Rx row is insensitive to it, but the elevated
	// transmitter of ElevationMIMO is not.
	Elevation float64
	// RadialVelocity is the range rate in m/s (positive receding); it
	// shifts the beat frequency by the Doppler term, which at automotive
	// speeds is orders of magnitude below the carrier (Sec 7.3).
	RadialVelocity float64
}

// Frame holds one frame of complex baseband samples for all Rx channels in
// one contiguous channel-major buffer, the layout the batched range
// transform (dsp.Plan.InverseMany) consumes directly.
type Frame struct {
	// Data holds NumRx*Samples complex samples; channel k occupies
	// Data[k*Samples : (k+1)*Samples].
	Data []complex128
	// NumRx is the channel count and Samples the per-channel length (also
	// the channel stride within Data).
	NumRx, Samples int

	// buf is the pooled backing store, nil for hand-built frames.
	buf *chanBuf
}

// Channel returns channel k's samples as a view into the frame's buffer.
func (f Frame) Channel(k int) []complex128 {
	return f.Data[k*f.Samples : (k+1)*f.Samples]
}

// NewFrame returns a zeroed frame with the config's channel count and
// sample length backed by a fresh (unpooled) buffer.
func (c Config) NewFrame() Frame {
	return Frame{Data: make([]complex128, c.NumRx*c.Samples), NumRx: c.NumRx, Samples: c.Samples}
}

// SynthPlan is the per-read execution plan of the frame front-end: every
// term of the synthesis model (Eq 2) that depends only on the radar
// configuration — wavelength, beat/Doppler/phase coefficients, the
// per-sample noise sigma, the ADC's AGC parameters — evaluated once, plus
// the fused window+FFT plan of the range transform (Eq 3). The detection
// pipeline builds one plan per read and shares it across the frame workers;
// the plan itself is immutable and safe for concurrent use, only the frame
// buffers are pooled per call.
type SynthPlan struct {
	cfg    Config
	lambda float64
	// beatK and dopK turn range and radial velocity into the beat
	// frequency: fb = beatK*Range + dopK*RadialVelocity.
	beatK, dopK float64
	// phaseK is the carrier round-trip phase per meter, 4*pi/lambda.
	phaseK float64
	// stepK converts the beat frequency into the per-sample phase step,
	// -2*pi/SampleRate.
	stepK float64
	// rxK is the element-to-element steering phase per unit sin(az),
	// 2*pi*RxSpacing/lambda.
	rxK float64
	// sigma is the per-sample thermal noise sigma per I/Q component.
	sigma float64
	// adcLevels is the quantizer level count per polarity,
	// 1 << (ADCBits - 1); 0 when ADCBits == 0 (quantization disabled).
	adcLevels float64
	// rangePlan is the fused Hann window + IFFT plan of the range
	// transform.
	rangePlan *dsp.Plan
}

// synthPlans caches plans per Config (Config is comparable); a sweep
// re-reading the same radar reuses the scene-static tables across reads.
var synthPlans sync.Map // Config -> *SynthPlan

// NewSynthPlan validates the configuration once and returns the frame
// front-end plan for it. It panics on an invalid config, exactly as
// Synthesize does.
func (c Config) NewSynthPlan() *SynthPlan {
	if v, ok := synthPlans.Load(c); ok {
		return v.(*SynthPlan)
	}
	if err := c.Validate(); err != nil {
		panic(fmt.Sprintf("radar: synthesis plan on invalid config: %v", err))
	}
	lambda := c.Wavelength()
	p := &SynthPlan{
		cfg:       c,
		lambda:    lambda,
		beatK:     2 * c.Slope / em.C,
		dopK:      2 / lambda,
		phaseK:    4 * math.Pi / lambda,
		stepK:     -2 * math.Pi / c.SampleRate,
		rxK:       2 * math.Pi * c.RxSpacing / lambda,
		sigma:     math.Sqrt(c.NoisePerBin()*float64(c.Samples)) / math.Sqrt2,
		rangePlan: dsp.PlanFor(c.Samples, dsp.Hann),
	}
	if c.ADCBits > 0 {
		// Levels per polarity; Validate bounded ADCBits to (0, 30], so
		// the shift cannot overflow.
		p.adcLevels = float64(int(1) << (c.ADCBits - 1))
	}
	actual, _ := synthPlans.LoadOrStore(c, p)
	return actual.(*SynthPlan)
}

// Config returns the radar configuration the plan was built for.
func (p *SynthPlan) Config() Config { return p.cfg }

// Synthesize generates a baseband frame per Eq 2 for the given scatterers,
// adding per-sample thermal noise sized so that the post-range-FFT per-bin
// noise power equals Config.NoisePerBin. A nil rng yields a noiseless frame.
//
// Per scatterer the executor runs three Sincos calls — base carrier phase,
// per-sample beat rotation, per-channel steering rotation — and generates
// every channel's tone from the channel-0 phasor by the steering recurrence
// cur_k = cur_0 * rot^k (rot = exp(-i*2*pi*d*sin(az)/lambda)), instead of
// one Sincos per channel. The per-sample rotation runs four independent
// phasor lanes so the chain of complex multiplies is throughput- rather
// than latency-bound. Rounding drift over a frame is ~n ulps, far below the
// noise floor.
func (p *SynthPlan) Synthesize(scatterers []Scatterer, rng *rand.Rand) Frame {
	c := p.cfg
	n := c.Samples
	buf := acquireChannels(c.NumRx, n, true)
	f := Frame{Data: buf.flat, NumRx: c.NumRx, Samples: n, buf: buf}

	for _, sc := range scatterers {
		if sc.Amplitude <= 0 || sc.Range <= 0 {
			continue
		}
		// Beat frequency from range plus Doppler.
		fb := p.beatK*sc.Range + p.dopK*sc.RadialVelocity
		base := p.phaseK*sc.Range + sc.Phase
		sinAz := math.Sin(sc.Azimuth)
		ds, dc := math.Sincos(p.stepK * fb)
		step := complex(dc, ds)
		rs, rc := math.Sincos(-p.rxK * sinAz)
		rot := complex(rc, rs)
		s0, c0 := math.Sincos(-base)
		cur := complex(sc.Amplitude*c0, sc.Amplitude*s0)
		for k := 0; k < c.NumRx; k++ {
			accumulateTone(f.Data[k*n:(k+1)*n], cur, step)
			cur *= rot
		}
	}

	// Per-sample noise such that after an N-point averaged FFT the per-bin
	// noise power equals NoisePerBin: the normalized FFT averages N
	// samples, reducing noise power by N. The same pass tracks the largest
	// I/Q excursion, which is the quantizer's AGC peak — no extra
	// full-frame scan.
	peak := 0.0
	switch {
	case rng != nil && c.ADCBits > 0:
		sigma := p.sigma
		for t, v := range f.Data {
			v += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
			f.Data[t] = v
			if a := math.Abs(real(v)); a > peak {
				peak = a
			}
			if a := math.Abs(imag(v)); a > peak {
				peak = a
			}
		}
	case rng != nil:
		sigma := p.sigma
		for t := range f.Data {
			f.Data[t] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		}
	case c.ADCBits > 0:
		for _, v := range f.Data {
			if a := math.Abs(real(v)); a > peak {
				peak = a
			}
			if a := math.Abs(imag(v)); a > peak {
				peak = a
			}
		}
	}
	if c.ADCBits > 0 {
		p.quantize(f, peak)
	}
	return f
}

// accumulateTone adds the complex tone cur * step^t to ch. The rotation
// recurrence is latency-bound (each multiply depends on the previous), so
// the loop advances four independent lanes a stride of step^4 apart,
// overlapping the multiply chains.
func accumulateTone(ch []complex128, cur, step complex128) {
	n := len(ch)
	step2 := step * step
	step4 := step2 * step2
	c0 := cur
	c1 := cur * step
	c2 := cur * step2
	c3 := c2 * step
	t := 0
	for ; t+4 <= n; t += 4 {
		ch[t] += c0
		ch[t+1] += c1
		ch[t+2] += c2
		ch[t+3] += c3
		c0 *= step4
		c1 *= step4
		c2 *= step4
		c3 *= step4
	}
	for ; t < n; t++ {
		ch[t] += c0
		c0 *= step
	}
}

// Synthesize generates a baseband frame per Eq 2 via the cached per-config
// plan; see SynthPlan.Synthesize. A nil rng yields a noiseless frame.
func (c Config) Synthesize(scatterers []Scatterer, rng *rand.Rand) Frame {
	return c.NewSynthPlan().Synthesize(scatterers, rng)
}

// quantize applies the config's b-bit midrise converter with per-frame AGC:
// the full scale tracks the given peak I/Q excursion (plus headroom), as a
// real front end's gain control would. The peak comes from the synthesis
// pass, which already touches every sample.
func (p *SynthPlan) quantize(f Frame, peak float64) {
	if peak == 0 {
		return
	}
	// Full scale is the peak plus 10% headroom. Evaluated as
	// (peak*1.1)/levels, the exact expression of the pre-plan quantizer,
	// so quantized frames are bit-identical to it.
	step := peak * 1.1 / p.adcLevels
	for t, v := range f.Data {
		f.Data[t] = complex(
			(math.Floor(real(v)/step)+0.5)*step,
			(math.Floor(imag(v)/step)+0.5)*step,
		)
	}
}
