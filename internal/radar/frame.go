package radar

import (
	"fmt"
	"math"
	"math/rand"

	"ros/internal/em"
)

// Scatterer is one point reflector as seen from the radar for one frame. The
// link budget (Eq 1, polarization coupling, atmospheric loss) is folded into
// Amplitude by the scene layer; the radar only turns geometry into signal.
type Scatterer struct {
	// Range is the radar-to-point distance in meters.
	Range float64
	// Azimuth is the angle of arrival measured from the array boresight in
	// radians.
	Azimuth float64
	// Amplitude is the linear received-signal amplitude, sqrt(watts),
	// referenced to a single post-range-FFT bin.
	Amplitude float64
	// Phase is an extra carrier phase in radians (e.g. from sub-bin range
	// offsets accumulated by the scene model).
	Phase float64
	// Elevation is the angle above the radar's horizontal plane in
	// radians; the azimuth Rx row is insensitive to it, but the elevated
	// transmitter of ElevationMIMO is not.
	Elevation float64
	// RadialVelocity is the range rate in m/s (positive receding); it
	// shifts the beat frequency by the Doppler term, which at automotive
	// speeds is orders of magnitude below the carrier (Sec 7.3).
	RadialVelocity float64
}

// Frame holds one frame of complex baseband samples, indexed
// [rx][sample].
type Frame struct {
	Samples [][]complex128
}

// Synthesize generates a baseband frame per Eq 2 for the given scatterers,
// adding per-sample thermal noise sized so that the post-range-FFT per-bin
// noise power equals Config.NoisePerBin. A nil rng yields a noiseless frame.
func (c Config) Synthesize(scatterers []Scatterer, rng *rand.Rand) Frame {
	if err := c.Validate(); err != nil {
		panic(fmt.Sprintf("radar: Synthesize on invalid config: %v", err))
	}
	lambda := c.Wavelength()
	n := c.Samples
	out := Frame{Samples: make([][]complex128, c.NumRx)}
	for k := range out.Samples {
		out.Samples[k] = make([]complex128, n)
	}

	for _, sc := range scatterers {
		if sc.Amplitude <= 0 || sc.Range <= 0 {
			continue
		}
		// Beat frequency from range plus Doppler.
		fb := 2*c.Slope*sc.Range/em.C + 2*sc.RadialVelocity/lambda
		base := 4*math.Pi*sc.Range/lambda + sc.Phase
		sinAz := math.Sin(sc.Azimuth)
		for k := 0; k < c.NumRx; k++ {
			aoa := 2 * math.Pi * float64(k) * c.RxSpacing * sinAz / lambda
			ch := out.Samples[k]
			for t := 0; t < n; t++ {
				tt := float64(t) / c.SampleRate
				ph := -(2*math.Pi*fb*tt + base + aoa)
				ch[t] += complex(sc.Amplitude*math.Cos(ph), sc.Amplitude*math.Sin(ph))
			}
		}
	}

	if rng != nil {
		// Per-sample noise such that after an N-point averaged FFT the
		// per-bin noise power equals NoisePerBin: the normalized FFT
		// averages N samples, reducing noise power by N.
		sigma := math.Sqrt(c.NoisePerBin()*float64(n)) / math.Sqrt2
		for k := range out.Samples {
			ch := out.Samples[k]
			for t := range ch {
				ch[t] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
			}
		}
	}
	if c.ADCBits > 0 {
		quantize(out, c.ADCBits)
	}
	return out
}

// quantize applies a b-bit midrise converter with per-frame AGC: the full
// scale tracks the largest I/Q excursion (plus headroom), as a real
// front end's gain control would.
func quantize(f Frame, bits int) {
	peak := 0.0
	for _, ch := range f.Samples {
		for _, v := range ch {
			if a := math.Abs(real(v)); a > peak {
				peak = a
			}
			if a := math.Abs(imag(v)); a > peak {
				peak = a
			}
		}
	}
	if peak == 0 {
		return
	}
	full := peak * 1.1
	levels := float64(int(1) << (bits - 1)) // per polarity
	step := full / levels
	q := func(x float64) float64 {
		return (math.Floor(x/step) + 0.5) * step
	}
	for _, ch := range f.Samples {
		for t, v := range ch {
			ch[t] = complex(q(real(v)), q(imag(v)))
		}
	}
}
