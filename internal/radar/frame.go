package radar

import (
	"math"
	"math/rand"

	"ros/internal/dsp"
)

// Scatterer is one point reflector as seen from the radar for one frame. The
// link budget (Eq 1, polarization coupling, atmospheric loss) is folded into
// Amplitude by the scene layer; the radar only turns geometry into signal.
type Scatterer struct {
	// Range is the radar-to-point distance in meters.
	Range float64
	// Azimuth is the angle of arrival measured from the array boresight in
	// radians.
	Azimuth float64
	// Amplitude is the linear received-signal amplitude, sqrt(watts),
	// referenced to a single post-range-FFT bin.
	Amplitude float64
	// Phase is an extra carrier phase in radians (e.g. from sub-bin range
	// offsets accumulated by the scene model).
	Phase float64
	// Elevation is the angle above the radar's horizontal plane in
	// radians; the azimuth Rx row is insensitive to it, but the elevated
	// transmitter of ElevationMIMO is not.
	Elevation float64
	// RadialVelocity is the range rate in m/s (positive receding); it
	// shifts the beat frequency by the Doppler term, which at automotive
	// speeds is orders of magnitude below the carrier (Sec 7.3).
	RadialVelocity float64
}

// Frame holds one frame of complex baseband samples for all Rx channels in
// one contiguous channel-major buffer, the layout the batched range
// transform (dsp.Plan.InverseMany) consumes directly.
type Frame struct {
	// Data holds NumRx*Samples complex samples; channel k occupies
	// Data[k*Samples : (k+1)*Samples].
	Data []complex128
	// NumRx is the channel count and Samples the per-channel length (also
	// the channel stride within Data).
	NumRx, Samples int

	// buf is the pooled backing store, nil for hand-built frames.
	buf *chanBuf
}

// Channel returns channel k's samples as a view into the frame's buffer.
func (f Frame) Channel(k int) []complex128 {
	return f.Data[k*f.Samples : (k+1)*f.Samples]
}

// NewFrame returns a zeroed frame with the config's channel count and
// sample length backed by a fresh (unpooled) buffer.
func (c Config) NewFrame() Frame {
	return Frame{Data: make([]complex128, c.NumRx*c.Samples), NumRx: c.NumRx, Samples: c.Samples}
}

// SynthPlan is the per-read execution plan of the frame front-end: every
// term of the synthesis model (Eq 2) that depends only on the radar
// configuration — wavelength, beat/Doppler/phase coefficients, the
// per-sample noise sigma, the ADC's AGC parameters — evaluated once, plus
// the fused window+FFT plan of the range transform (Eq 3). The detection
// pipeline builds one plan per read and shares it across the frame workers;
// the plan itself is immutable and safe for concurrent use, only the frame
// buffers are pooled per call.
type SynthPlan struct {
	cfg    Config
	lambda float64
	// beatK and dopK turn range and radial velocity into the beat
	// frequency: fb = beatK*Range + dopK*RadialVelocity.
	beatK, dopK float64
	// phaseK is the carrier round-trip phase per meter, 4*pi/lambda.
	phaseK float64
	// stepK converts the beat frequency into the per-sample phase step,
	// -2*pi/SampleRate.
	stepK float64
	// rxK is the element-to-element steering phase per unit sin(az),
	// 2*pi*RxSpacing/lambda.
	rxK float64
	// sigma is the per-sample thermal noise sigma per I/Q component.
	sigma float64
	// adcLevels is the quantizer level count per polarity,
	// 1 << (ADCBits - 1); 0 when ADCBits == 0 (quantization disabled).
	adcLevels float64
	// useF32 selects the float32 tone/noise kernel lane. The plan takes it
	// whenever the precision is paid for downstream: with ADCBits in (0,14]
	// the quantizer step at full scale is >= 2^-14 of peak, a thousand times
	// the float32 rounding of the tone store (2^-24 relative), and with
	// ADCBits == 0 (ideal converter) the thermal noise floor plays the same
	// masking role. Only ADCBits > 14 — or an explicit Config.ForceFloat64 —
	// keeps the full-precision lane.
	useF32 bool
	// rangePlan is the fused Hann window + IFFT plan of the range
	// transform.
	rangePlan *dsp.Plan
	// steer is the precomputed AoA steering table for the config's array
	// geometry, captured from the owning session at build time.
	steer *steeringTable
	// pool recycles the plan's frame and profile buffers; releasing the
	// plan's owner releases the buffers with it.
	pool *framePool
}

// NewSynthPlan validates the configuration once and returns the default
// session's frame front-end plan for it. It panics on an invalid config,
// exactly as Synthesize does. Callers holding an explicit resource handle
// use Session.SynthPlanFor instead.
func (c Config) NewSynthPlan() *SynthPlan {
	return defaultSession.SynthPlanFor(c)
}

// Config returns the radar configuration the plan was built for.
func (p *SynthPlan) Config() Config { return p.cfg }

// Synthesize generates a baseband frame per Eq 2 for the given scatterers,
// adding per-sample thermal noise sized so that the post-range-FFT per-bin
// noise power equals Config.NoisePerBin. A nil g yields a noiseless frame.
//
// Per scatterer the executor runs three Sincos calls — base carrier phase,
// per-sample beat rotation, per-channel steering rotation — then hands the
// work to the structure-of-arrays dsp tone kernel: dsp.ToneFill runs the
// latency-bound rotation recurrence exactly once into split re/im lanes,
// and every Rx channel accumulates the finished lanes rotated by its
// steering phasor rot^k (rot = exp(-i*2*pi*d*sin(az)/lambda)) via
// dsp.AccumulateRotated — independent multiply-adds with no serial chain,
// one pass over the frame per channel instead of one recurrence per
// channel. The kernel renormalizes its phasors periodically, so drift stays
// bounded on arbitrarily long frames.
//
// Thermal noise comes from the batched Gaussian stream g (dsp.Gauss): one
// FillNorm over preallocated lanes replaces the 2*Samples*NumRx individual
// NormFloat64 calls the profile showed dominating this stage.
func (p *SynthPlan) Synthesize(scatterers []Scatterer, g *dsp.Gauss) Frame {
	c := p.cfg
	n := c.Samples
	// The pooled buffer is taken dirty: the first contributing scatterer
	// stores its tone (dsp.StoreTone) instead of accumulating, which
	// replaces the full-frame memclr with useful writes.
	buf := p.pool.acquire(c.NumRx, n, false)
	f := Frame{Data: buf.flat, NumRx: c.NumRx, Samples: n, buf: buf}

	var wrote bool
	if p.useF32 {
		wrote = p.synthTones32(f, buf, scatterers)
	} else {
		wrote = p.synthTones(f, buf, scatterers)
	}
	if !wrote {
		clear(f.Data)
	}

	// Per-sample noise such that after an N-point averaged FFT the per-bin
	// noise power equals NoisePerBin: the normalized FFT averages N
	// samples, reducing noise power by N. The draws come batched from the
	// Gauss stream; the add pass tracks the largest I/Q excursion, which is
	// the quantizer's AGC peak — no extra full-frame scan. The f32 lane's
	// paired-draw generator consumes the stream at half the rate, so f32 and
	// f64 noise realizations are distinct sequences by design.
	peak := 0.0
	switch {
	case g != nil && c.ADCBits > 0:
		sigma := p.sigma
		if p.useF32 {
			lane := g.Norms32(2 * len(f.Data))
			for t, v := range f.Data {
				v += complex(float64(lane[2*t])*sigma, float64(lane[2*t+1])*sigma)
				f.Data[t] = v
				if a := math.Abs(real(v)); a > peak {
					peak = a
				}
				if a := math.Abs(imag(v)); a > peak {
					peak = a
				}
			}
			break
		}
		lane := g.Norms(2 * len(f.Data))
		for t, v := range f.Data {
			v += complex(lane[2*t]*sigma, lane[2*t+1]*sigma)
			f.Data[t] = v
			if a := math.Abs(real(v)); a > peak {
				peak = a
			}
			if a := math.Abs(imag(v)); a > peak {
				peak = a
			}
		}
	case g != nil:
		// No quantizer, no peak needed: the fused generator accumulates
		// the scaled draws straight into the frame.
		if p.useF32 {
			g.AddNoise32(f.Data, p.sigma)
		} else {
			g.AddNoise(f.Data, p.sigma)
		}
	case c.ADCBits > 0:
		for _, v := range f.Data {
			if a := math.Abs(real(v)); a > peak {
				peak = a
			}
			if a := math.Abs(imag(v)); a > peak {
				peak = a
			}
		}
	}
	if c.ADCBits > 0 {
		p.quantize(f, peak)
	}
	return f
}

// synthTones runs the scatterer loop into the frame at full precision:
// three Sincos calls per scatterer, one ToneFill recurrence into the split
// lanes, then store/accumulate passes rotated per channel by the steering
// phasor. Returns whether any scatterer contributed (the first one's stores
// replace the frame memclr).
func (p *SynthPlan) synthTones(f Frame, buf *chanBuf, scatterers []Scatterer) bool {
	c := p.cfg
	n := c.Samples
	re, im := buf.lanes(n)
	wrote := false
	for _, sc := range scatterers {
		if sc.Amplitude <= 0 || sc.Range <= 0 {
			continue
		}
		// Beat frequency from range plus Doppler.
		fb := p.beatK*sc.Range + p.dopK*sc.RadialVelocity
		base := p.phaseK*sc.Range + sc.Phase
		sinAz := math.Sin(sc.Azimuth)
		ds, dc := math.Sincos(p.stepK * fb)
		rs, rc := math.Sincos(-p.rxK * sinAz)
		s0, c0 := math.Sincos(-base)
		dsp.ToneFill(re, im, sc.Amplitude*c0, sc.Amplitude*s0, dc, ds)
		aRe, aIm := rc, rs
		if !wrote {
			wrote = true
			dsp.StoreTone(f.Data[:n], re, im)
			for k := 1; k < c.NumRx; k++ {
				dsp.StoreRotated(f.Data[k*n:(k+1)*n], re, im, aRe, aIm)
				aRe, aIm = aRe*rc-aIm*rs, aRe*rs+aIm*rc
			}
			continue
		}
		dsp.AccumulateTone(f.Data[:n], re, im)
		for k := 1; k < c.NumRx; k++ {
			dsp.AccumulateRotated(f.Data[k*n:(k+1)*n], re, im, aRe, aIm)
			aRe, aIm = aRe*rc-aIm*rs, aRe*rs+aIm*rc
		}
	}
	return wrote
}

// synthTones32 is synthTones on the float32 kernel lane: the phasor
// recurrence and the per-channel rotation still run in float64, but the tone
// lane is stored once at float32 — halving the lane traffic every channel
// pass re-reads. Each sample's tone is the f64 value rounded once (relative
// error <= 2^-24), far below both the quantizer step at <= 14 bits and the
// thermal noise floor; the equivalence suite bounds the end-to-end
// divergence below half a quantizer cell.
func (p *SynthPlan) synthTones32(f Frame, buf *chanBuf, scatterers []Scatterer) bool {
	c := p.cfg
	n := c.Samples
	re, im := buf.lanes32(n)
	wrote := false
	for _, sc := range scatterers {
		if sc.Amplitude <= 0 || sc.Range <= 0 {
			continue
		}
		fb := p.beatK*sc.Range + p.dopK*sc.RadialVelocity
		base := p.phaseK*sc.Range + sc.Phase
		sinAz := math.Sin(sc.Azimuth)
		ds, dc := math.Sincos(p.stepK * fb)
		rs, rc := math.Sincos(-p.rxK * sinAz)
		s0, c0 := math.Sincos(-base)
		dsp.ToneFill32(re, im, sc.Amplitude*c0, sc.Amplitude*s0, dc, ds)
		aRe, aIm := rc, rs
		if !wrote {
			wrote = true
			dsp.StoreTone32(f.Data[:n], re, im)
			for k := 1; k < c.NumRx; k++ {
				dsp.StoreRotated32(f.Data[k*n:(k+1)*n], re, im, aRe, aIm)
				aRe, aIm = aRe*rc-aIm*rs, aRe*rs+aIm*rc
			}
			continue
		}
		dsp.AccumulateTone32(f.Data[:n], re, im)
		for k := 1; k < c.NumRx; k++ {
			dsp.AccumulateRotated32(f.Data[k*n:(k+1)*n], re, im, aRe, aIm)
			aRe, aIm = aRe*rc-aIm*rs, aRe*rs+aIm*rc
		}
	}
	return wrote
}

// Synthesize generates a baseband frame per Eq 2 via the cached per-config
// plan; see SynthPlan.Synthesize. A nil rng yields a noiseless frame; a
// non-nil rng seeds one pooled Gauss noise stream from a single rng draw,
// so the output is a pure function of the rng state.
func (c Config) Synthesize(scatterers []Scatterer, rng *rand.Rand) Frame {
	plan := c.NewSynthPlan()
	if rng == nil {
		return plan.Synthesize(scatterers, nil)
	}
	g := dsp.AcquireGauss(int64(rng.Uint64()))
	f := plan.Synthesize(scatterers, g)
	dsp.ReleaseGauss(g)
	return f
}

// quantize applies the config's b-bit midrise converter with per-frame AGC:
// the full scale tracks the given peak I/Q excursion (plus headroom), as a
// real front end's gain control would. The peak comes from the synthesis
// pass, which already touches every sample.
func (p *SynthPlan) quantize(f Frame, peak float64) {
	if peak == 0 {
		return
	}
	// Full scale is the peak plus 10% headroom. Evaluated as
	// (peak*1.1)/levels, the exact expression of the pre-plan quantizer,
	// so quantized frames are bit-identical to it.
	step := peak * 1.1 / p.adcLevels
	for t, v := range f.Data {
		f.Data[t] = complex(
			(math.Floor(real(v)/step)+0.5)*step,
			(math.Floor(imag(v)/step)+0.5)*step,
		)
	}
}
