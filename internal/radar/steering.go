package radar

import (
	"math"
)

// Cached steering kernels for the AoA scan (Eq 4). The beamforming steering
// expression exp(j*2*pi*k*d*sin(theta)/lambda) depends only on the array
// geometry (NumRx, RxSpacing) and the carrier — never on the frame — yet the
// decode pipeline evaluates it thousands of times per drive-by: once per
// scan angle per above-threshold range bin, plus twice per frame per
// spotlighted object. Precomputing the weights once per Config removes every
// math.Sin/Cos call from those loops: the scan becomes a table lookup plus a
// NumRx-length complex dot product, and single-angle spotlighting needs one
// Sincos for the element-to-element rotation.

// steeringKey identifies the geometry a steering table depends on; configs
// that share these fields share one cached table.
type steeringKey struct {
	numRx   int
	spacing float64
	freq    float64
}

// steeringTable holds the AoA scan grid and its precomputed steering weights
// for one array geometry. Both slices are shared across goroutines and must
// be treated as read-only.
type steeringTable struct {
	numRx int
	// angles is the scan grid: +/-60 deg (the radar antenna FoV, Sec 7.3)
	// in 1-degree steps.
	angles []float64
	// weights holds exp(j*2*pi*k*d*sin(angles[a])/lambda) at index
	// a*numRx+k.
	weights []complex128
}

// steering returns the default session's cached steering table for this
// config, computing it on first use. Callers holding an explicit resource
// handle reach their table through Session.SynthPlanFor instead.
func (c Config) steering() *steeringTable {
	return defaultSession.steeringFor(c)
}

func newSteeringTable(c Config) *steeringTable {
	const step = math.Pi / 180
	var angles []float64
	for a := -60.0 * step; a <= 60*step+1e-12; a += step {
		angles = append(angles, a)
	}
	t := &steeringTable{
		numRx:   c.NumRx,
		angles:  angles,
		weights: make([]complex128, len(angles)*c.NumRx),
	}
	lambda := c.Wavelength()
	for a, th := range angles {
		sinTh := math.Sin(th)
		for k := 0; k < c.NumRx; k++ {
			w := 2 * math.Pi * float64(k) * c.RxSpacing * sinTh / lambda
			sin, cos := math.Sincos(w)
			t.weights[a*c.NumRx+k] = complex(cos, sin)
		}
	}
	return t
}

// ScanAngles returns the AoA scan grid: +/-60 deg (the radar antenna FoV,
// Sec 7.3) in 1-degree steps. The slice is cached per array geometry and
// shared — callers must not modify it. Passing it to AoASpectrum selects the
// precomputed-kernel fast path.
func (c Config) ScanAngles() []float64 { return c.steering().angles }
