package radar

import (
	"math"
	"reflect"
	"testing"

	"ros/internal/dsp"
)

// scanStreamFrame synthesizes frame t of a deterministic drive-by-like
// stream: a strong target migrating slowly through range plus weak clutter,
// with per-frame noise — the regime the incremental scan is built for.
func scanStreamFrame(t *testing.T, c Config, plan *SynthPlan, idx int, dropTarget bool) RangeProfile {
	t.Helper()
	sc := []Scatterer{
		{Range: 5 + 0.002*float64(idx), Azimuth: 0.1, Amplitude: 3e-5},
		{Range: 9.5 - 0.001*float64(idx), Azimuth: -0.3, Amplitude: 1.2e-5},
		{Range: 14, Azimuth: 0.4, Amplitude: 6e-6},
	}
	if dropTarget {
		sc = sc[2:]
	}
	g := dsp.NewGauss(int64(1000 + idx))
	f := plan.Synthesize(sc, g)
	rp := plan.RangeProfile(f)
	ReleaseFrame(f)
	return rp
}

// TestPointCloudScanMatchesFullScan pins the incremental scan to the full
// scan byte for byte over a correlated frame stream, including pop-in and
// pop-out transients that defeat the hint set, and checks the hint
// restriction actually engaged (the equality would otherwise be vacuous).
func TestPointCloudScanMatchesFullScan(t *testing.T) {
	c := TI1443()
	plan := c.NewSynthPlan()
	var opts DetectOptions
	var st ScanState
	incBefore := mScanIncremental.Value()
	fullBefore := mScanFull.Value()
	for idx := 0; idx < 80; idx++ {
		// Frames 40-44 drop the strong targets entirely (pop-out), frame 45
		// brings them back at a jumped range (pop-in outside any guard band).
		drop := idx >= 40 && idx < 45
		rp := scanStreamFrame(t, c, plan, idx, drop)
		want := c.PointCloudFromProfile(rp, opts)
		got := c.PointCloudScan(rp, opts, &st)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d (drop=%v): incremental %v != full %v", idx, drop, got, want)
		}
		ReleaseProfile(rp)
	}
	if inc := mScanIncremental.Value() - incBefore; inc < 40 {
		t.Errorf("only %d of 80 frames took the incremental path — hint set never engaged", inc)
	}
	if full := mScanFull.Value() - fullBefore; full < 81 {
		// 80 full-scan references + at least the cold-start stateful scan.
		t.Errorf("full-scan counter moved by %d, want >= 81", full)
	}
}

// TestPointCloudScanRefreshInterval checks the periodic full rescan: a
// stationary scene takes the incremental path except every
// scanRefreshInterval-th frame.
func TestPointCloudScanRefreshInterval(t *testing.T) {
	c := TI1443()
	plan := c.NewSynthPlan()
	var st ScanState
	incBefore := mScanIncremental.Value()
	fullBefore := mScanFull.Value()
	// Full scans land at frame 0 (cold) and then every
	// scanRefreshInterval+1 frames (the refresh itself resets the counter).
	const frames = 2*(scanRefreshInterval+1) + 1
	for idx := 0; idx < frames; idx++ {
		rp := scanStreamFrame(t, c, plan, 0, false) // identical frame each time
		c.PointCloudScan(rp, DetectOptions{}, &st)
		ReleaseProfile(rp)
	}
	full := mScanFull.Value() - fullBefore
	inc := mScanIncremental.Value() - incBefore
	if want := int64(3); full != want { // cold start + two refreshes
		t.Errorf("full scans = %d, want %d (cold start + refreshes)", full, want)
	}
	if full+inc != frames {
		t.Errorf("full %d + incremental %d != %d frames", full, inc, frames)
	}
}

// TestPointCloudScanResetForcesFullScan checks Reset's contract: the frame
// after a Reset never trusts the hints, exactly as a pipeline recovering
// from a dropped frame requires.
func TestPointCloudScanResetForcesFullScan(t *testing.T) {
	c := TI1443()
	plan := c.NewSynthPlan()
	var st ScanState
	rp := scanStreamFrame(t, c, plan, 0, false)
	defer ReleaseProfile(rp)
	c.PointCloudScan(rp, DetectOptions{}, &st) // warm the state
	incBefore := mScanIncremental.Value()
	c.PointCloudScan(rp, DetectOptions{}, &st)
	if mScanIncremental.Value() != incBefore+1 {
		t.Fatal("warm state did not take the incremental path")
	}
	st.Reset()
	fullBefore := mScanFull.Value()
	c.PointCloudScan(rp, DetectOptions{}, &st)
	if mScanFull.Value() != fullBefore+1 {
		t.Error("scan after Reset did not take the full path")
	}
	// And the state re-warms afterwards.
	incBefore = mScanIncremental.Value()
	c.PointCloudScan(rp, DetectOptions{}, &st)
	if mScanIncremental.Value() != incBefore+1 {
		t.Error("state did not re-warm after the post-Reset full scan")
	}
}

// TestPointCloudScanOptionsForceFull checks the two opt-outs: CFAR mode
// (whose local thresholds the hint machinery cannot describe) and
// DisableIncremental both keep every scan full, state or no state.
func TestPointCloudScanOptionsForceFull(t *testing.T) {
	c := TI1443()
	plan := c.NewSynthPlan()
	rp := scanStreamFrame(t, c, plan, 0, false)
	defer ReleaseProfile(rp)
	var st ScanState
	incBefore := mScanIncremental.Value()
	for i := 0; i < 3; i++ {
		want := c.PointCloudFromProfile(rp, DetectOptions{UseCFAR: true})
		got := c.PointCloudScan(rp, DetectOptions{UseCFAR: true}, &st)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("CFAR pass %d: %v != %v", i, got, want)
		}
	}
	var st2 ScanState
	for i := 0; i < 3; i++ {
		want := c.PointCloudFromProfile(rp, DetectOptions{})
		got := c.PointCloudScan(rp, DetectOptions{DisableIncremental: true}, &st2)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("DisableIncremental pass %d: %v != %v", i, got, want)
		}
	}
	if mScanIncremental.Value() != incBefore {
		t.Error("an opted-out scan took the incremental path")
	}
}

// TestPointCloudScanRandomProfiles hammers the equality on uncorrelated
// random profiles — the adversarial case where hints are always wrong and
// the coverage check must catch every one.
func TestPointCloudScanRandomProfiles(t *testing.T) {
	c := TI1443()
	plan := c.NewSynthPlan()
	var st ScanState
	for trial := 0; trial < 60; trial++ {
		g := dsp.NewGauss(int64(7 + trial))
		sc := make([]Scatterer, 1+trial%5)
		for i := range sc {
			sc[i] = Scatterer{
				Range:     1 + math.Mod(float64(trial*13+i*29), 17),
				Azimuth:   math.Mod(float64(trial*7+i*3), 1.0) - 0.5,
				Amplitude: 2e-5 * math.Mod(float64(trial+i)*0.37, 1.0),
			}
		}
		f := plan.Synthesize(sc, g)
		rp := plan.RangeProfile(f)
		ReleaseFrame(f)
		want := c.PointCloudFromProfile(rp, DetectOptions{})
		got := c.PointCloudScan(rp, DetectOptions{}, &st)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: incremental %v != full %v", trial, got, want)
		}
		ReleaseProfile(rp)
	}
}

func BenchmarkPointCloudIncremental(b *testing.B) {
	c := TI1443()
	plan := c.NewSynthPlan()
	g := dsp.NewGauss(3)
	f := plan.Synthesize([]Scatterer{
		{Range: 5, Azimuth: 0.1, Amplitude: 3e-5},
		{Range: 9.5, Azimuth: -0.3, Amplitude: 1.2e-5},
	}, g)
	rp := plan.RangeProfile(f)
	ReleaseFrame(f)
	defer ReleaseProfile(rp)
	var st ScanState
	c.PointCloudScan(rp, DetectOptions{}, &st) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PointCloudScan(rp, DetectOptions{}, &st)
	}
}

func BenchmarkPointCloudFull(b *testing.B) {
	c := TI1443()
	plan := c.NewSynthPlan()
	g := dsp.NewGauss(3)
	f := plan.Synthesize([]Scatterer{
		{Range: 5, Azimuth: 0.1, Amplitude: 3e-5},
		{Range: 9.5, Azimuth: -0.3, Amplitude: 1.2e-5},
	}, g)
	rp := plan.RangeProfile(f)
	ReleaseFrame(f)
	defer ReleaseProfile(rp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PointCloudFromProfile(rp, DetectOptions{})
	}
}
