package radar

import (
	"fmt"
	"math"

	"ros/internal/dsp"
)

// Slow-time (frame-to-frame) Doppler processing. The paper's Sec 7.3 argues
// Doppler is negligible for RoS decoding; this module makes the argument
// quantitative by letting users measure the radial velocity the same radar
// would report. Note the frame rate bounds the unambiguous velocity at
// +/- lambda * Fs / 4 (about +/-0.95 m/s at the TI defaults' 1 kHz —
// automotive radars resolve speed with much faster chirp trains, which a
// Config with a higher FrameRate models directly).

// DopplerMap computes the range-Doppler power map from a coherent sequence
// of frames using one Rx channel: a range transform per frame followed by an
// FFT across frames per range bin. It returns the map indexed
// [doppler][range] together with the velocity axis in m/s (negative =
// approaching).
func (c Config) DopplerMap(frames []Frame, rx int) (powerMap [][]float64, velocity []float64, err error) {
	k := len(frames)
	if k < 2 {
		return nil, nil, fmt.Errorf("radar: Doppler needs at least 2 frames, got %d", k)
	}
	if rx < 0 || rx >= c.NumRx {
		return nil, nil, fmt.Errorf("radar: rx %d outside 0..%d", rx, c.NumRx-1)
	}
	// Range profiles per frame.
	profiles := make([]RangeProfile, k)
	for i, f := range frames {
		profiles[i] = c.RangeProfile(f)
	}
	nBins := c.Samples

	// Slow-time FFT per range bin, Hann-windowed against leakage. The
	// window (and its coherent-gain normalization) is fused into the plan's
	// first butterfly pass, and the three per-bin buffers are reused across
	// the bin loop.
	plan := dsp.PlanFor(k, dsp.Hann)
	powerMap = make([][]float64, k)
	for d := range powerMap {
		powerMap[d] = make([]float64, nBins)
	}
	slow := make([]complex128, k)
	spec := make([]complex128, k)
	shifted := make([]complex128, k)
	for b := 0; b < nBins; b++ {
		for i := 0; i < k; i++ {
			slow[i] = profiles[i].Bins[rx][b]
		}
		plan.Forward(spec, slow)
		dsp.FFTShiftInto(shifted, spec)
		for d, v := range shifted {
			powerMap[d][b] = (real(v)*real(v) + imag(v)*imag(v)) / float64(k*k)
		}
	}

	// Velocity axis: a radial velocity v advances the round-trip phase by
	// 4*pi*v/(lambda*Fs) per frame. FFTShift puts DC at index k/2.
	lambda := c.Wavelength()
	velocity = make([]float64, k)
	for d := range velocity {
		fd := float64(d-k/2) * c.FrameRate / float64(k) // Hz of slow-time tone
		velocity[d] = -fd * lambda / 2                  // phase decreases as range grows
	}
	return powerMap, velocity, nil
}

// EstimateVelocity returns the radial velocity (m/s, positive receding) of
// the strongest slow-time tone at the range bin nearest rangeM.
func (c Config) EstimateVelocity(frames []Frame, rx int, rangeM float64) (float64, error) {
	m, vel, err := c.DopplerMap(frames, rx)
	if err != nil {
		return 0, err
	}
	bin := c.BinForRange(rangeM)
	best, idx := math.Inf(-1), 0
	for d := range m {
		if m[d][bin] > best {
			best, idx = m[d][bin], d
		}
	}
	return vel[idx], nil
}

// MaxUnambiguousVelocity returns lambda * FrameRate / 4 in m/s.
func (c Config) MaxUnambiguousVelocity() float64 {
	return c.Wavelength() * c.FrameRate / 4
}
