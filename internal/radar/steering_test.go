package radar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// refSpectrum evaluates Eq 4 with the direct per-angle, per-element trig
// expression the cached steering kernels replaced — the correctness
// reference for the fast paths.
func refSpectrum(c Config, rp RangeProfile, bin int, angles []float64) []float64 {
	lambda := c.Wavelength()
	out := make([]float64, len(angles))
	for i, th := range angles {
		var sum complex128
		sinTh := math.Sin(th)
		for k := 0; k < c.NumRx; k++ {
			w := 2 * math.Pi * float64(k) * c.RxSpacing * sinTh / lambda
			steer := complex(math.Cos(w), math.Sin(w))
			sum += rp.Bins[k][bin] * steer
		}
		sum /= complex(float64(c.NumRx), 0)
		out[i] = real(sum)*real(sum) + imag(sum)*imag(sum)
	}
	return out
}

// specEqual reports whether two spectra agree to within tol relative to the
// spectrum peak (nulls sit near zero, where a pointwise relative test would
// amplify last-ulp rounding into meaningless failures).
func specEqual(got, want []float64, tol float64) (int, bool) {
	peak := 0.0
	for _, v := range want {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		peak = 1
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol*peak {
			return i, false
		}
	}
	return -1, true
}

func testProfile(t testing.TB, c Config) RangeProfile {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	f := c.Synthesize([]Scatterer{
		{Range: 4, Azimuth: 0.3, Amplitude: 1e-4},
		{Range: 2.5, Azimuth: -0.4, Amplitude: 5e-5},
	}, rng)
	return c.RangeProfile(f)
}

func TestScanAnglesCachedAndShared(t *testing.T) {
	c := TI1443()
	a, b := c.ScanAngles(), c.ScanAngles()
	if len(a) != 121 {
		t.Fatalf("scan grid has %d angles, want 121 (+/-60 deg in 1 deg steps)", len(a))
	}
	if &a[0] != &b[0] {
		t.Error("ScanAngles reallocated the grid instead of returning the cache")
	}
	const step = math.Pi / 180
	if math.Abs(a[0]+60*step) > 1e-12 || math.Abs(a[120]-60*step) > 1e-9 {
		t.Errorf("grid spans [%g, %g] rad, want +/-60 deg", a[0], a[len(a)-1])
	}
	// A config with the same geometry shares the table; a different
	// geometry gets its own.
	c2 := TI1443()
	c2.Slope *= 2 // no effect on steering
	if d := c2.ScanAngles(); &d[0] != &a[0] {
		t.Error("same array geometry did not share the steering cache")
	}
	c3 := TI1443()
	c3.NumRx = 8
	if d := c3.ScanAngles(); &d[0] == &a[0] {
		t.Error("different array geometry shared a steering table")
	}
}

func TestAoASpectrumCachedMatchesTrigReference(t *testing.T) {
	// The cached-kernel scan path must match the direct trig expression to
	// within 1e-12 of the spectrum peak at every angle and bin.
	for _, c := range []Config{TI1443(), Commercial()} {
		rp := testProfile(t, c)
		angles := c.ScanAngles()
		for _, bin := range []int{1, c.BinForRange(2.5), c.BinForRange(4), c.Samples - 2} {
			got := c.AoASpectrum(rp, bin, angles)
			want := refSpectrum(c, rp, bin, angles)
			if i, ok := specEqual(got, want, 1e-12); !ok {
				t.Errorf("bin %d angle %d: cached %g vs trig %g", bin, i, got[i], want[i])
			}
		}
	}
}

func TestAoASpectrumFallbackMatchesTrigReference(t *testing.T) {
	// A caller-provided angle slice (not the cached grid) takes the
	// recurrence path; it must match the reference too.
	c := TI1443()
	rp := testProfile(t, c)
	angles := []float64{-0.9, -0.31, 0, 0.17, 0.55, 1.02}
	bin := c.BinForRange(4)
	got := c.AoASpectrum(rp, bin, angles)
	want := refSpectrum(c, rp, bin, angles)
	if i, ok := specEqual(got, want, 1e-12); !ok {
		t.Errorf("angle %d: fallback %g vs trig %g", i, got[i], want[i])
	}
}

func TestBeamPowerMatchesTrigReference(t *testing.T) {
	c := TI1443()
	rp := testProfile(t, c)
	bin := c.BinForRange(4)
	f := func(raw float64) bool {
		az := math.Mod(math.Abs(raw), 2.1) - 1.05 // ±60 deg
		got := c.BeamPower(rp, bin, az)
		want := refSpectrum(c, rp, bin, []float64{az})[0]
		peak := refSpectrum(c, rp, bin, []float64{0.3})[0] // near the target
		return math.Abs(got-want) <= 1e-12*math.Max(want, peak)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAoASpectrumWideArrayHeapPath(t *testing.T) {
	// NumRx > 16 exercises the heap-allocated gather buffer in the cached
	// path and longer recurrences in the fallback.
	c := TI1443()
	c.NumRx = 20
	rp := testProfile(t, c)
	bin := c.BinForRange(4)
	got := c.AoASpectrum(rp, bin, c.ScanAngles())
	want := refSpectrum(c, rp, bin, c.ScanAngles())
	if i, ok := specEqual(got, want, 1e-12); !ok {
		t.Errorf("angle %d: cached %g vs trig %g", i, got[i], want[i])
	}
}

func TestAoASpectrumIntoValidatesDst(t *testing.T) {
	c := TI1443()
	rp := testProfile(t, c)
	defer func() {
		if recover() == nil {
			t.Error("short dst accepted")
		}
	}()
	c.AoASpectrumInto(make([]float64, 2), rp, 4, c.ScanAngles())
}
