package radar

import (
	"math"
	"math/rand"
	"testing"
)

func TestCFARDetectsTargetsInColoredNoise(t *testing.T) {
	// A target on a locally raised floor: global-median thresholding would
	// need a bigger margin, CFAR adapts.
	n := 256
	power := make([]float64, n)
	for i := range power {
		power[i] = 1.0
		if i > 128 {
			power[i] = 10 // clutter shelf
		}
	}
	power[60] = 100   // 20 dB over its local floor
	power[200] = 1000 // 20 dB over the shelf
	dets := CFARDetect(power, CFAROptions{ThresholdDB: 13})
	found60, found200 := false, false
	for _, d := range dets {
		switch d {
		case 60:
			found60 = true
		case 200:
			found200 = true
		}
	}
	if !found60 || !found200 {
		t.Errorf("detections %v, want 60 and 200", dets)
	}
	// Shelf cells themselves must not fire (they match their local floor).
	for _, d := range dets {
		if d != 60 && d != 200 && d < 129 || d > 201 {
			continue
		}
	}
	if len(dets) > 6 {
		t.Errorf("too many detections: %v", dets)
	}
}

func TestCFAREdges(t *testing.T) {
	if dets := CFARDetect(nil, CFAROptions{}); len(dets) != 0 {
		t.Errorf("detections on empty input: %v", dets)
	}
	// A single strong cell at the array edge still detects via one-sided
	// training.
	power := make([]float64, 64)
	for i := range power {
		power[i] = 1
	}
	power[0] = 1e4
	dets := CFARDetect(power, CFAROptions{})
	if len(dets) != 1 || dets[0] != 0 {
		t.Errorf("edge detection = %v, want [0]", dets)
	}
}

func TestCFARPanicsOnBadOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative guard accepted")
		}
	}()
	CFARDetect([]float64{1, 2, 3}, CFAROptions{Guard: -1, Training: 4})
}

func TestDopplerEstimatesVelocity(t *testing.T) {
	c := TI1443()
	for _, v := range []float64{0.3, -0.5, 0} {
		k := 64
		frames := make([]Frame, k)
		for i := range frames {
			r := 4.0 + v*float64(i)/c.FrameRate
			frames[i] = c.Synthesize([]Scatterer{{
				Range: r, Azimuth: 0, Amplitude: 1e-4, RadialVelocity: v,
			}}, nil)
		}
		got, err := c.EstimateVelocity(frames, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		res := c.Wavelength() * c.FrameRate / (2 * float64(k)) // velocity bin
		if math.Abs(got-v) > 1.5*res {
			t.Errorf("velocity %g: estimated %g (resolution %g)", v, got, res)
		}
	}
}

func TestDopplerUnambiguousBound(t *testing.T) {
	c := TI1443()
	// Sec 7.3's point quantified: at 1 kHz frames the unambiguous window
	// is under 1 m/s — frame-rate Doppler cannot corrupt range decoding.
	if v := c.MaxUnambiguousVelocity(); math.Abs(v-0.949) > 0.01 {
		t.Errorf("max unambiguous velocity = %g m/s, want ~0.95", v)
	}
}

func TestDopplerErrors(t *testing.T) {
	c := TI1443()
	f := c.Synthesize(nil, nil)
	if _, _, err := c.DopplerMap([]Frame{f}, 0); err == nil {
		t.Error("single frame accepted")
	}
	if _, _, err := c.DopplerMap([]Frame{f, f}, 9); err == nil {
		t.Error("bad rx accepted")
	}
}

func TestDopplerMapStationaryTargetAtZero(t *testing.T) {
	c := TI1443()
	k := 32
	frames := make([]Frame, k)
	for i := range frames {
		frames[i] = c.Synthesize([]Scatterer{{Range: 3, Amplitude: 1e-4}}, nil)
	}
	m, vel, err := c.DopplerMap(frames, 0)
	if err != nil {
		t.Fatal(err)
	}
	bin := c.BinForRange(3)
	best, idx := math.Inf(-1), 0
	for d := range m {
		if m[d][bin] > best {
			best, idx = m[d][bin], d
		}
	}
	if math.Abs(vel[idx]) > 1e-9 {
		t.Errorf("stationary target at velocity %g", vel[idx])
	}
}

func TestPointCloudWithCFAR(t *testing.T) {
	c := TI1443()
	rng := rand.New(rand.NewSource(31))
	amp := math.Sqrt(c.NoisePerBin()) * 100
	f := c.Synthesize([]Scatterer{
		{Range: 3, Azimuth: 0.2, Amplitude: amp},
		{Range: 6, Azimuth: -0.3, Amplitude: amp},
	}, rng)
	dets := c.PointCloud(f, DetectOptions{UseCFAR: true})
	found3, found6 := false, false
	for _, d := range dets {
		if math.Abs(d.Range-3) < 0.15 {
			found3 = true
		}
		if math.Abs(d.Range-6) < 0.15 {
			found6 = true
		}
	}
	if !found3 || !found6 {
		t.Errorf("CFAR point cloud missed targets: %+v", dets)
	}
	// CFAR and median paths agree on a clean scene.
	med := c.PointCloud(f, DetectOptions{})
	if len(med) == 0 {
		t.Error("median path found nothing")
	}
}
