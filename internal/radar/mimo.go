package radar

import (
	"fmt"
	"math"
	"math/rand"

	"ros/internal/dsp"
	"ros/internal/roserr"
)

// TDM-MIMO processing. The TI IWR1443 carries 3 Tx antennas; transmitting
// chirps from each Tx in turn and stacking the Rx channels forms a virtual
// array of NumTx*NumRx elements, tripling the angular resolution the
// single-Tx pipeline of Sec 3.2 achieves. RoS itself needs only one Tx per
// polarization, but the sharper virtual beam tightens the point clouds that
// feed DBSCAN, so the library models it.

// MIMOConfig extends a radar with time-division multiplexed transmitters.
type MIMOConfig struct {
	Config
	// NumTx is the transmitter count (the IWR1443 has 3).
	NumTx int
	// TxSpacing is the Tx element spacing in meters; the standard choice
	// NumRx*RxSpacing makes the virtual array uniform and gapless.
	TxSpacing float64
}

// TI1443MIMO returns the evaluation radar with its full 3-Tx TDM
// configuration.
func TI1443MIMO() MIMOConfig {
	base := TI1443()
	return MIMOConfig{
		Config:    base,
		NumTx:     3,
		TxSpacing: float64(base.NumRx) * base.RxSpacing,
	}
}

// Validate reports whether the MIMO configuration is usable.
func (m MIMOConfig) Validate() error {
	if err := m.Config.Validate(); err != nil {
		return err
	}
	if m.NumTx < 1 {
		return fmt.Errorf("radar: %w: need at least 1 Tx, got %d", roserr.ErrConfig, m.NumTx)
	}
	if m.TxSpacing <= 0 {
		return fmt.Errorf("radar: %w: non-positive Tx spacing %g", roserr.ErrConfig, m.TxSpacing)
	}
	return nil
}

// VirtualElements returns the virtual array size NumTx*NumRx.
func (m MIMOConfig) VirtualElements() int { return m.NumTx * m.NumRx }

// VirtualBeamwidth returns the virtual array's angular resolution in
// radians, lambda/(NumTx*NumRx*RxSpacing) for the gapless layout.
func (m MIMOConfig) VirtualBeamwidth() float64 {
	return m.Wavelength() / (float64(m.VirtualElements()) * m.RxSpacing)
}

// SynthesizeTDM generates one TDM burst: NumTx frames, the i-th transmitted
// from Tx element i. A Tx offset shifts the one-way path, which appears as
// an extra phase k*txPos*sin(az) on every scatterer — the virtual-array
// principle. A nil rng yields noiseless frames.
func (m MIMOConfig) SynthesizeTDM(scatterers []Scatterer, rng *rand.Rand) []Frame {
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("radar: SynthesizeTDM on invalid config: %v", err))
	}
	lambda := m.Wavelength()
	out := make([]Frame, m.NumTx)
	for tx := 0; tx < m.NumTx; tx++ {
		txPos := float64(tx) * m.TxSpacing
		shifted := make([]Scatterer, len(scatterers))
		for i, sc := range scatterers {
			s := sc
			s.Phase += 2 * math.Pi * txPos * math.Sin(sc.Azimuth) / lambda
			shifted[i] = s
		}
		out[tx] = m.Config.Synthesize(shifted, rng)
	}
	return out
}

// VirtualAoASpectrum beamforms the stacked virtual array at one range bin:
// the burst's NumTx frames are range-transformed, their Rx channels
// concatenated in virtual order, and conventional beamforming applied over
// the NumTx*NumRx elements.
func (m MIMOConfig) VirtualAoASpectrum(burst []Frame, bin int, angles []float64) ([]float64, error) {
	if len(burst) != m.NumTx {
		return nil, fmt.Errorf("radar: burst has %d frames, config %d Tx", len(burst), m.NumTx)
	}
	lambda := m.Wavelength()
	nv := m.VirtualElements()
	virt := make([]complex128, nv)
	for tx, f := range burst {
		rp := m.Config.RangeProfile(f)
		if bin < 0 || bin >= len(rp.Bins[0]) {
			return nil, fmt.Errorf("radar: bin %d outside profile", bin)
		}
		for rx := 0; rx < m.NumRx; rx++ {
			virt[tx*m.NumRx+rx] = rp.Bins[rx][bin]
		}
	}
	out := make([]float64, len(angles))
	for i, th := range angles {
		// Virtual element position tx*TxSpacing + rx*RxSpacing factors the
		// steering weight into rotTx^tx * rotRx^rx, so each angle costs two
		// Sincos calls and a complex recurrence instead of per-element trig.
		sinTh := math.Sin(th)
		sinRx, cosRx := math.Sincos(2 * math.Pi * m.RxSpacing * sinTh / lambda)
		sinTx, cosTx := math.Sincos(2 * math.Pi * m.TxSpacing * sinTh / lambda)
		rotRx := complex(cosRx, sinRx)
		rotTx := complex(cosTx, sinTx)
		var sum complex128
		steerTx := complex(1, 0)
		for tx := 0; tx < m.NumTx; tx++ {
			steer := steerTx
			for rx := 0; rx < m.NumRx; rx++ {
				sum += virt[tx*m.NumRx+rx] * steer
				steer *= rotRx
			}
			steerTx *= rotTx
		}
		sum /= complex(float64(nv), 0)
		out[i] = real(sum)*real(sum) + imag(sum)*imag(sum)
	}
	return out, nil
}

// VirtualAoAEstimate returns the angle (radians) of the strongest virtual
// beamforming response at the range bin nearest rangeM.
func (m MIMOConfig) VirtualAoAEstimate(burst []Frame, rangeM float64) (float64, error) {
	angles := m.Config.ScanAngles()
	spec, err := m.VirtualAoASpectrum(burst, m.BinForRange(rangeM), angles)
	if err != nil {
		return 0, err
	}
	peaks := dsp.FindPeaks(spec, 0, 2)
	if len(peaks) == 0 {
		_, idx := dsp.Max(spec)
		return angles[idx], nil
	}
	step := angles[1] - angles[0]
	return angles[0] + peaks[0].Pos*step, nil
}
