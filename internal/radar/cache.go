// Cache registry of the radar package. Both caches are process-lifetime
// memo maps keyed by radar geometry, with immutable entries shared across
// goroutines. Neither evicts: the working set is bounded by the number of
// distinct configurations the process touches, so each mirrors its entry
// count into an internal/obs gauge (ros_radar_*_entries) and ResetCaches
// drops them both.
package radar

import "ros/internal/obs"

var (
	// synthPlans caches frame front-end plans per Config (Config is
	// comparable); a sweep re-reading the same radar reuses the
	// scene-static tables across reads.
	synthPlans = obs.NewCountedMap(obs.Default.Gauge("ros_radar_synth_plan_entries",
		"Resident frame synthesis plans, one per radar Config."))
	// steeringCache caches beamforming steering tables per
	// (numRx, spacing, frequency).
	steeringCache = obs.NewCountedMap(obs.Default.Gauge("ros_radar_steering_entries",
		"Resident beamforming steering tables, one per array geometry."))
)

// ResetCaches drops the radar memo caches — synthesis plans and steering
// tables — and zeroes their gauges. Values already handed out stay valid
// (entries are immutable); subsequent calls simply rebuild. Intended for
// long-lived processes cycling through unbounded radar configurations and
// for tests that need a cold start.
func ResetCaches() {
	synthPlans.Clear()
	steeringCache.Clear()
}
