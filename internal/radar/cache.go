// Default-session compatibility shim of the radar package. Every memo cache
// — frame synthesis plans and beamforming steering tables — lives in a
// Session (see session.go); this file owns the one default session behind
// the package-level entry points, so callers without an explicit resource
// handle keep the process-lifetime behavior. The default session's caches
// mirror their entry counts into the legacy ros_radar_*_entries gauges, and
// ResetCaches drops them both.
package radar

import "ros/internal/obs"

// defaultSession is the process-wide session behind the package-level shims,
// drawing its transform plans from the default dsp plan set.
var defaultSession = NewSession(nil, func(cache string) *obs.Gauge {
	switch cache {
	case CacheSynthPlans:
		return obs.Default.Gauge("ros_radar_synth_plan_entries",
			"Resident frame synthesis plans, one per radar Config.")
	default:
		return obs.Default.Gauge("ros_radar_steering_entries",
			"Resident beamforming steering tables, one per array geometry.")
	}
})

// DefaultSession returns the process-wide session the package-level entry
// points (Config.NewSynthPlan, Config.Synthesize, the AoA helpers) memoize
// into.
func DefaultSession() *Session { return defaultSession }

// ResetCaches drops the default session's memo caches — synthesis plans and
// steering tables — and zeroes their gauges. Values already handed out stay
// valid (entries are immutable); subsequent calls simply rebuild. Intended
// for long-lived processes cycling through unbounded radar configurations
// and for tests that need a cold start.
func ResetCaches() {
	defaultSession.Clear()
}
