package radar

import (
	"fmt"
	"math"
	"math/rand"

	"ros/internal/roserr"
)

// Elevation sensing. The IWR1443's third transmitter sits half a wavelength
// above the azimuth row; comparing the phase of returns illuminated by the
// elevated Tx against the reference Tx (phase monopulse) yields a coarse
// elevation angle — enough to tell a high-mounted tag from a bumper-height
// one, the deployment dimension Sec 7.3's blockage mitigation relies on.

// ElevationMIMO extends the TDM-MIMO radar with one elevated transmitter.
type ElevationMIMO struct {
	MIMOConfig
	// TxHeight is the elevated transmitter's vertical offset in meters
	// (lambda/2 on the IWR1443).
	TxHeight float64
}

// TI1443Elevation returns the evaluation radar with its elevation Tx.
func TI1443Elevation() ElevationMIMO {
	m := TI1443MIMO()
	m.NumTx = 2 // reference + elevated
	return ElevationMIMO{MIMOConfig: m, TxHeight: m.Wavelength() / 2}
}

// Validate reports whether the configuration is usable.
func (e ElevationMIMO) Validate() error {
	if err := e.MIMOConfig.Validate(); err != nil {
		return err
	}
	if e.TxHeight <= 0 {
		return fmt.Errorf("radar: %w: non-positive elevation Tx height %g", roserr.ErrConfig, e.TxHeight)
	}
	if e.NumTx != 2 {
		return fmt.Errorf("radar: %w: elevation monopulse needs exactly 2 Tx, got %d", roserr.ErrConfig, e.NumTx)
	}
	return nil
}

// SynthesizeElevation generates the two-frame burst: frame 0 from the
// reference Tx, frame 1 from the elevated Tx whose extra one-way path adds
// the phase -k*TxHeight*sin(el) per scatterer. A nil rng is noiseless.
func (e ElevationMIMO) SynthesizeElevation(scatterers []Scatterer, rng *rand.Rand) []Frame {
	if err := e.Validate(); err != nil {
		panic(fmt.Sprintf("radar: SynthesizeElevation on invalid config: %v", err))
	}
	lambda := e.Wavelength()
	out := make([]Frame, 2)
	out[0] = e.Config.Synthesize(scatterers, rng)
	shifted := make([]Scatterer, len(scatterers))
	for i, sc := range scatterers {
		s := sc
		s.Phase -= 2 * math.Pi * e.TxHeight * math.Sin(sc.Elevation) / lambda
		shifted[i] = s
	}
	out[1] = e.Config.Synthesize(shifted, rng)
	return out
}

// EstimateElevation runs phase monopulse at the given range and azimuth:
// the phase difference between the two Tx illuminations maps back to the
// elevation angle. Ambiguity: |el| < asin(lambda/(2*TxHeight)) (90 deg for
// the half-wavelength offset).
func (e ElevationMIMO) EstimateElevation(burst []Frame, rangeM, azimuth float64) (float64, error) {
	if len(burst) != 2 {
		return 0, fmt.Errorf("radar: elevation burst needs 2 frames, got %d", len(burst))
	}
	bin := e.BinForRange(rangeM)
	lambda := e.Wavelength()

	beam := func(f Frame) complex128 {
		rp := e.Config.RangeProfile(f)
		var sum complex128
		sinAz := math.Sin(azimuth)
		for k := 0; k < e.NumRx; k++ {
			w := 2 * math.Pi * float64(k) * e.RxSpacing * sinAz / lambda
			sum += rp.Bins[k][bin] * complex(math.Cos(w), math.Sin(w))
		}
		return sum
	}
	ref := beam(burst[0])
	ele := beam(burst[1])
	refMag := real(ref)*real(ref) + imag(ref)*imag(ref)
	if refMag == 0 {
		return 0, fmt.Errorf("radar: no return at range %.2f m", rangeM)
	}
	// The synthesizer negates the whole phase argument (see Synthesize),
	// so the elevated Tx's -k*h*sin(el) scatterer phase shows up as
	// +2*pi*h*sin(el)/lambda of relative phase here.
	cross := ele * complex(real(ref), -imag(ref))
	dphi := math.Atan2(imag(cross), real(cross))
	sinEl := dphi * lambda / (2 * math.Pi * e.TxHeight)
	if sinEl > 1 || sinEl < -1 {
		return 0, fmt.Errorf("radar: elevation phase %.2f rad outside the unambiguous window", dphi)
	}
	return math.Asin(sinEl), nil
}

// HeightOf converts an elevation estimate at a known ground range into a
// target height relative to the radar.
func HeightOf(elevation, rangeM float64) float64 {
	return rangeM * math.Tan(elevation)
}
