// Package radar implements the FMCW automotive radar simulator used to
// interrogate RoS tags: baseband chirp synthesis per Eq 2, range estimation
// by IFFT per Eq 3, angle-of-arrival estimation by Rx-array beamforming per
// Eq 4, point-cloud extraction (Sec 3.2), and the "spotlight" beamforming
// RSS measurement of Sec 6. Default parameters mirror the TI IWR1443
// configuration of Sec 7.1: 66 MHz/us slope, 5 Msps, 256 samples per frame,
// 1 kHz frame rate, 4 Rx antennas.
package radar

import (
	"fmt"

	"ros/internal/em"
	"ros/internal/roserr"
)

// Config describes one radar.
type Config struct {
	// CenterFrequency is the carrier in Hz.
	CenterFrequency float64
	// Slope is the FMCW frequency slope gamma in Hz/s.
	Slope float64
	// SampleRate is the complex baseband sampling rate in Hz.
	SampleRate float64
	// Samples is the number of baseband samples per chirp/frame.
	Samples int
	// FrameRate is the frame repetition rate Fs in Hz.
	FrameRate float64
	// NumRx is the receive antenna count.
	NumRx int
	// RxSpacing is the Rx element spacing in meters.
	RxSpacing float64
	// FrontEnd carries the link-budget parameters.
	FrontEnd em.RadarFrontEnd
	// ADCBits quantizes the baseband I/Q samples to this many bits with a
	// simple full-scale AGC; 0 models an ideal converter.
	ADCBits int
	// ForceFloat64 disables the float32 kernel lane the synthesis plan
	// otherwise selects when the ADC word is short enough that quantization
	// (or, for an ideal converter, the thermal noise floor) dwarfs float32
	// rounding. Set it to reproduce the float64 reference arithmetic
	// bit-for-bit — equivalence tests and numerical forensics, not
	// production reads.
	ForceFloat64 bool
}

// TI1443 returns the evaluation radar of Sec 7.1.
func TI1443() Config {
	return Config{
		CenterFrequency: em.CenterFrequency,
		Slope:           66e6 / 1e-6, // 66 MHz/us
		SampleRate:      5e6,
		Samples:         256,
		FrameRate:       1000,
		NumRx:           4,
		RxSpacing:       em.Lambda79() / 2,
		FrontEnd:        em.TIRadar(),
	}
}

// Validate reports whether the configuration is usable. Every rejection
// wraps roserr.ErrConfig, so misconfiguration is distinguishable from
// runtime faults by errors.Is.
func (c Config) Validate() error {
	switch {
	case c.CenterFrequency <= 0:
		return fmt.Errorf("radar: %w: non-positive carrier %g", roserr.ErrConfig, c.CenterFrequency)
	case c.Slope <= 0:
		return fmt.Errorf("radar: %w: non-positive slope %g", roserr.ErrConfig, c.Slope)
	case c.SampleRate <= 0:
		return fmt.Errorf("radar: %w: non-positive sample rate %g", roserr.ErrConfig, c.SampleRate)
	case c.Samples < 8:
		return fmt.Errorf("radar: %w: need at least 8 samples, got %d", roserr.ErrConfig, c.Samples)
	case c.FrameRate <= 0:
		return fmt.Errorf("radar: %w: non-positive frame rate %g", roserr.ErrConfig, c.FrameRate)
	case c.NumRx < 1:
		return fmt.Errorf("radar: %w: need at least 1 Rx antenna, got %d", roserr.ErrConfig, c.NumRx)
	case c.RxSpacing <= 0:
		return fmt.Errorf("radar: %w: non-positive Rx spacing %g", roserr.ErrConfig, c.RxSpacing)
	case c.ADCBits < 0 || c.ADCBits > 30:
		// 0 models an ideal converter; anything past 30 bits would
		// silently overflow the quantizer's level shift.
		return fmt.Errorf("radar: %w: ADC bits %d outside [1, 30] (0 disables quantization)", roserr.ErrConfig, c.ADCBits)
	}
	return nil
}

// Wavelength returns the carrier wavelength in meters.
func (c Config) Wavelength() float64 { return em.Wavelength(c.CenterFrequency) }

// ChirpDuration returns the sampled chirp length in seconds.
func (c Config) ChirpDuration() float64 { return float64(c.Samples) / c.SampleRate }

// SweptBandwidth returns the bandwidth swept during the sampled chirp in Hz
// (~3.4 GHz for the TI defaults).
func (c Config) SweptBandwidth() float64 { return c.Slope * c.ChirpDuration() }

// RangeResolution returns c/(2B) in meters (Sec 3.2).
func (c Config) RangeResolution() float64 { return em.C / (2 * c.SweptBandwidth()) }

// MaxRange returns the unambiguous range of the complex baseband,
// c*fs/(2*gamma).
func (c Config) MaxRange() float64 { return em.C * c.SampleRate / (2 * c.Slope) }

// RangeBinSize returns the range represented by one FFT bin; equal to
// RangeResolution for an unpadded FFT.
func (c Config) RangeBinSize() float64 { return c.MaxRange() / float64(c.Samples) }

// Beamwidth returns the Rx array's angular resolution in radians,
// lambda/(N*d) (~28.6 deg for 4 half-wavelength elements, Sec 7.1).
func (c Config) Beamwidth() float64 {
	return c.Wavelength() / (float64(c.NumRx) * c.RxSpacing)
}

// NoisePerBin returns the per-channel post-range-FFT noise power in watts:
// the front end's noise floor (Sec 5.3's -62 dBm for the TI radar).
func (c Config) NoisePerBin() float64 {
	return em.FromDBm(c.FrontEnd.NoiseFloorDBm())
}

// Commercial returns a production automotive radar per Sec 8: the low-noise
// high-EIRP front end of the paper's [34, 36] on a gentler 20 MHz/us chirp
// whose unambiguous range (37.5 m) covers the extended link budget.
func Commercial() Config {
	c := TI1443()
	c.Slope = 20e6 / 1e-6
	c.FrontEnd = em.CommercialRadar()
	return c
}
