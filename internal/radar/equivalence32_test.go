package radar

import (
	"math"
	"math/rand"
	"testing"
)

// halfCell14Rel is half a quantizer cell at the float32 gate boundary
// (ADCBits = 14), relative to the AGC peak: the quantizer step is
// peak*1.1/2^13, so a half cell is peak*1.1/2^14. The float32 lane is
// admissible exactly because its tone divergence stays strictly below this
// for every ADC word the gate accepts (shorter words only widen the cell).
const halfCell14Rel = 1.1 / (1 << 14)

// TestFloat32ToneDivergenceBelowHalfCell measures the noiseless synthesis
// divergence between the float32 lane and the float64 reference on random
// scenes and asserts it strictly below half a 14-bit quantizer cell — the
// error-budget argument that makes the f32 lane's decoded bits identical.
// (Noise is excluded by design: the paired-draw f32 generator is a
// different, deliberately re-contracted realization, not a rounding of the
// f64 one; decode-bit identity under noise is asserted end-to-end in the
// top-level determinism suite.)
func TestFloat32ToneDivergenceBelowHalfCell(t *testing.T) {
	c := TI1443() // ADCBits 0: the f32 lane is on, nothing quantizes the diff away
	if c.ForceFloat64 {
		t.Fatal("test premise broken: TI1443 forces float64")
	}
	ref := c
	ref.ForceFloat64 = true
	plan32 := c.NewSynthPlan()
	plan64 := ref.NewSynthPlan()
	worst := 0.0
	for trial := 0; trial < 16; trial++ {
		scene := randomScene(rand.New(rand.NewSource(int64(100*trial+17))), c)
		f32 := plan32.Synthesize(scene, nil)
		f64 := plan64.Synthesize(scene, nil)
		scale := 0.0
		for _, v := range f64.Data {
			if a := math.Hypot(real(v), imag(v)); a > scale {
				scale = a
			}
		}
		if scale == 0 {
			scale = 1
		}
		for i, v := range f64.Data {
			d := f32.Data[i] - v
			if e := math.Hypot(real(d), imag(d)) / scale; e > worst {
				worst = e
			}
		}
		ReleaseFrame(f32)
		ReleaseFrame(f64)
	}
	if worst >= halfCell14Rel {
		t.Fatalf("f32 tone divergence %.3g >= half a 14-bit cell %.3g", worst, halfCell14Rel)
	}
	// The margin should be decades, not ulps: f32 store rounding is ~6e-8
	// relative. A collapse of the margin means the recurrence itself fell to
	// float32 somewhere.
	if worst > halfCell14Rel/100 {
		t.Errorf("f32 tone divergence %.3g is within 100x of the budget %.3g — margin collapsed", worst, halfCell14Rel)
	}
}

// TestFloat32QuantizedWithinOneCell runs the gate-boundary config
// (ADCBits 14) noiselessly through both lanes and asserts every quantized
// sample lands in the same or an adjacent cell: with tone divergence far
// below half a cell, only samples within ulps of a cell boundary may flip,
// and never by more than one step (the AGC peaks of the two lanes differ by
// the same sub-half-cell bound, shifting every boundary by ulps).
func TestFloat32QuantizedWithinOneCell(t *testing.T) {
	c := TI1443()
	c.ADCBits = 14
	ref := c
	ref.ForceFloat64 = true
	stepRel := 1.1 / float64(int(1)<<(c.ADCBits-1))
	plan32 := c.NewSynthPlan()
	plan64 := ref.NewSynthPlan()
	for trial := 0; trial < 8; trial++ {
		scene := randomScene(rand.New(rand.NewSource(int64(41*trial+5))), c)
		f32 := plan32.Synthesize(scene, nil)
		f64 := plan64.Synthesize(scene, nil)
		scale := 0.0
		for _, v := range f64.Data {
			if a := math.Abs(real(v)); a > scale {
				scale = a
			}
			if a := math.Abs(imag(v)); a > scale {
				scale = a
			}
		}
		if scale == 0 {
			scale = 1
		}
		budget := stepRel * (1 + 1e-9) * scale
		for i, v := range f64.Data {
			if d := math.Abs(real(f32.Data[i]) - real(v)); d > budget {
				t.Fatalf("trial %d sample %d re: |%g| exceeds one cell %g", trial, i, d, budget)
			}
			if d := math.Abs(imag(f32.Data[i]) - imag(v)); d > budget {
				t.Fatalf("trial %d sample %d im: |%g| exceeds one cell %g", trial, i, d, budget)
			}
		}
		ReleaseFrame(f32)
		ReleaseFrame(f64)
	}
}

// TestFloat32GateSelection pins the lane-selection rule: short ADC words
// and the ideal converter take the f32 lane, long words and ForceFloat64
// keep full precision.
func TestFloat32GateSelection(t *testing.T) {
	cases := []struct {
		bits  int
		force bool
		want  bool
	}{
		{0, false, true},
		{2, false, true},
		{12, false, true},
		{14, false, true},
		{15, false, false},
		{16, false, false},
		{0, true, false},
		{12, true, false},
	}
	for _, tc := range cases {
		c := TI1443()
		c.ADCBits = tc.bits
		c.ForceFloat64 = tc.force
		if got := c.NewSynthPlan().useF32; got != tc.want {
			t.Errorf("ADCBits=%d ForceFloat64=%v: useF32=%v, want %v", tc.bits, tc.force, got, tc.want)
		}
	}
}
