//go:build race

package radar

// raceEnabled reports whether the race detector is on; see race_off_test.go.
const raceEnabled = true
