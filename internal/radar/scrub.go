package radar

import "math"

// ScrubFrame zeroes every non-finite sample of a frame in place and returns
// how many samples it repaired. A NaN or Inf anywhere in a channel would
// otherwise poison that channel's entire range profile through the FFT, so
// the detection pipeline scrubs corrupted frames before the range transform
// and counts the repairs on the obs registry; a frame scrubbed beyond the
// pipeline's repair threshold is dropped as corrupt instead.
func ScrubFrame(f Frame) int {
	scrubbed := 0
	for t, v := range f.Data {
		re, im := real(v), imag(v)
		if isFinite(re) && isFinite(im) {
			continue
		}
		f.Data[t] = 0
		scrubbed++
	}
	return scrubbed
}

// isFinite reports whether v is neither NaN nor ±Inf. Inlined comparison
// form: NaN fails v == v, ±Inf fails the range check.
func isFinite(v float64) bool {
	return v == v && v <= math.MaxFloat64 && v >= -math.MaxFloat64
}
