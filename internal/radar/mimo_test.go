package radar

import (
	"math"
	"math/rand"
	"testing"

	"ros/internal/geom"
)

func TestTI1443MIMOValidates(t *testing.T) {
	m := TI1443MIMO()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.VirtualElements() != 12 {
		t.Errorf("virtual elements = %d, want 12", m.VirtualElements())
	}
	// 12 half-wavelength virtual elements: ~9.5 deg resolution, a 3x
	// improvement over the 4-Rx physical array.
	if bw := geom.Deg(m.VirtualBeamwidth()); math.Abs(bw-9.55) > 0.3 {
		t.Errorf("virtual beamwidth = %g deg, want ~9.5", bw)
	}
	if m.VirtualBeamwidth() >= m.Beamwidth()/2.9 {
		t.Error("virtual array did not sharpen the beam ~3x")
	}
}

func TestMIMOValidateRejects(t *testing.T) {
	m := TI1443MIMO()
	m.NumTx = 0
	if m.Validate() == nil {
		t.Error("zero Tx accepted")
	}
	m = TI1443MIMO()
	m.TxSpacing = 0
	if m.Validate() == nil {
		t.Error("zero Tx spacing accepted")
	}
	m = TI1443MIMO()
	m.NumRx = 0
	if m.Validate() == nil {
		t.Error("invalid base config accepted")
	}
}

func TestVirtualAoAEstimation(t *testing.T) {
	m := TI1443MIMO()
	for _, azDeg := range []float64{-35, -12, 0, 8, 27} {
		az := geom.Rad(azDeg)
		burst := m.SynthesizeTDM([]Scatterer{{Range: 4, Azimuth: az, Amplitude: 1e-4}}, nil)
		got, err := m.VirtualAoAEstimate(burst, 4)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(geom.Deg(got)-azDeg) > 1.5 {
			t.Errorf("AoA = %g deg, want %g", geom.Deg(got), azDeg)
		}
	}
}

func TestVirtualArraySeparatesCloseTargets(t *testing.T) {
	// Two targets 12 deg apart in the same range bin: inside the physical
	// 28.6-deg beam (fused) but resolvable by the 9.5-deg virtual beam.
	m := TI1443MIMO()
	sc := []Scatterer{
		{Range: 4, Azimuth: geom.Rad(-6), Amplitude: 1e-4},
		{Range: 4, Azimuth: geom.Rad(6), Amplitude: 1e-4},
	}
	burst := m.SynthesizeTDM(sc, nil)
	angles := m.Config.ScanAngles()
	spec, err := m.VirtualAoASpectrum(burst, m.BinForRange(4), angles)
	if err != nil {
		t.Fatal(err)
	}
	// The midpoint (0 deg) must be a dip between two peaks.
	var at0, atNeg6, atPos6 float64
	for i, a := range angles {
		switch math.Round(geom.Deg(a)) {
		case 0:
			at0 = spec[i]
		case -6:
			atNeg6 = spec[i]
		case 6:
			atPos6 = spec[i]
		}
	}
	if at0 >= atNeg6 || at0 >= atPos6 {
		t.Errorf("virtual array did not separate targets: dip %g vs peaks %g, %g", at0, atNeg6, atPos6)
	}
}

func TestVirtualAoAErrors(t *testing.T) {
	m := TI1443MIMO()
	burst := m.SynthesizeTDM([]Scatterer{{Range: 3, Amplitude: 1e-4}}, nil)
	if _, err := m.VirtualAoASpectrum(burst[:1], 10, []float64{0}); err == nil {
		t.Error("short burst accepted")
	}
	if _, err := m.VirtualAoASpectrum(burst, -1, []float64{0}); err == nil {
		t.Error("bad bin accepted")
	}
}

func TestSynthesizeTDMDeterministic(t *testing.T) {
	m := TI1443MIMO()
	gen := func() []Frame {
		return m.SynthesizeTDM([]Scatterer{{Range: 3, Azimuth: 0.1, Amplitude: 1e-4}},
			rand.New(rand.NewSource(5)))
	}
	a, b := gen(), gen()
	for tx := range a {
		for i := range a[tx].Data {
			if a[tx].Data[i] != b[tx].Data[i] {
				t.Fatal("same seed produced different bursts")
			}
		}
	}
}
