package radar

import "sync"

// chanPool recycles the [rx][sample] complex buffers behind frames and
// range profiles. A drive-by synthesizes and transforms two frames per pose
// (~560 per pass), and with the frame loop running on a worker pool the
// buffers would otherwise be reallocated from every worker; recycling them
// keeps the steady-state allocation rate near zero. Buffers are stored with
// their channel structure intact and reused only when the shape matches the
// requesting config (mismatched shapes are simply dropped).
var chanPool sync.Pool

// acquireChannels returns a [numRx][n] buffer, zeroed when zero is set
// (frame synthesis accumulates with +=; the range transform overwrites
// every element and skips the clear).
func acquireChannels(numRx, n int, zero bool) [][]complex128 {
	if v := chanPool.Get(); v != nil {
		ch := v.([][]complex128)
		if len(ch) == numRx && (numRx == 0 || len(ch[0]) == n) {
			if zero {
				for k := range ch {
					clear(ch[k])
				}
			}
			return ch
		}
	}
	flat := make([]complex128, numRx*n)
	ch := make([][]complex128, numRx)
	for k := range ch {
		ch[k] = flat[k*n : (k+1)*n]
	}
	return ch
}

// ReleaseFrame returns a frame's sample buffers to the pool. The caller must
// not touch the frame afterwards; frames that escape to long-lived results
// should simply not be released.
func ReleaseFrame(f Frame) {
	if f.Samples != nil {
		chanPool.Put(f.Samples)
	}
}

// ReleaseProfile returns a range profile's bin buffers to the pool. Same
// contract as ReleaseFrame.
func ReleaseProfile(rp RangeProfile) {
	if rp.Bins != nil {
		chanPool.Put(rp.Bins)
	}
}
