package radar

import "sync"

// chanBuf is the pooled backing store behind frames and range profiles: one
// contiguous channel-major buffer plus per-channel views over it. Frames use
// flat directly (the batched range transform consumes the contiguous
// layout); range profiles expose the views as RangeProfile.Bins.
type chanBuf struct {
	flat  []complex128
	views [][]complex128
}

// chanPool recycles chanBufs. A drive-by synthesizes and transforms two
// frames per pose (~560 per pass), and with the frame loop running on a
// worker pool the buffers would otherwise be reallocated from every worker;
// recycling them keeps the steady-state allocation rate near zero. Buffers
// are reused only when the shape matches the requesting config (mismatched
// shapes are simply dropped).
var chanPool sync.Pool

// acquireChannels returns a [numRx][n] buffer, zeroed when zero is set
// (frame synthesis accumulates with +=; the range transform overwrites
// every element and skips the clear).
func acquireChannels(numRx, n int, zero bool) *chanBuf {
	if v := chanPool.Get(); v != nil {
		b := v.(*chanBuf)
		if len(b.views) == numRx && len(b.flat) == numRx*n {
			if zero {
				clear(b.flat)
			}
			return b
		}
	}
	flat := make([]complex128, numRx*n)
	views := make([][]complex128, numRx)
	for k := range views {
		views[k] = flat[k*n : (k+1)*n]
	}
	return &chanBuf{flat: flat, views: views}
}

// ReleaseFrame returns a frame's sample buffer to the pool. The caller must
// not touch the frame afterwards; frames that escape to long-lived results
// should simply not be released.
func ReleaseFrame(f Frame) {
	if f.buf != nil {
		chanPool.Put(f.buf)
	}
}

// ReleaseProfile returns a range profile's bin buffers to the pool. Same
// contract as ReleaseFrame.
func ReleaseProfile(rp RangeProfile) {
	if rp.buf != nil {
		chanPool.Put(rp.buf)
	}
}
