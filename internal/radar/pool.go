package radar

import "sync"

// chanBuf is the pooled backing store behind frames and range profiles: one
// contiguous channel-major buffer plus per-channel views over it. Frames use
// flat directly (the batched range transform consumes the contiguous
// layout); range profiles expose the views as RangeProfile.Bins. The buffer
// also carries the split re/im tone lanes of the synthesis kernel, so a
// frame's scatterer loop allocates nothing.
type chanBuf struct {
	flat  []complex128
	views [][]complex128
	// numRx and n record the shape the views currently describe, so a
	// same-shape reuse skips rebuilding them.
	numRx, n int
	// laneRe/laneIm are the structure-of-arrays scratch lanes of the tone
	// kernel (dsp.ToneFill), sized lazily to the sample count.
	laneRe, laneIm []float64
	// laneRe32/laneIm32 are the float32 twins (dsp.ToneFill32), used when
	// the synthesis plan selects the reduced-precision kernel lane.
	laneRe32, laneIm32 []float32
	// home is the pool the buffer recycles through, so ReleaseFrame and
	// ReleaseProfile return it to the synthesis plan that produced it.
	home *framePool
}

// newChanBuf allocates a fresh [numRx][n] buffer.
func newChanBuf(numRx, n int) *chanBuf {
	b := &chanBuf{flat: make([]complex128, numRx*n)}
	b.reshape(numRx, n)
	return b
}

// reshape reslices the buffer to [numRx][n], rebuilding the channel views
// only when the shape actually changed. The caller guarantees
// cap(flat) >= numRx*n.
func (b *chanBuf) reshape(numRx, n int) {
	b.flat = b.flat[:numRx*n]
	if b.numRx == numRx && b.n == n {
		return
	}
	if cap(b.views) < numRx {
		b.views = make([][]complex128, numRx)
	}
	b.views = b.views[:numRx]
	for k := range b.views {
		b.views[k] = b.flat[k*n : (k+1)*n]
	}
	b.numRx, b.n = numRx, n
}

// lanes returns the buffer's tone scratch lanes resliced to n samples,
// growing them on first use (or on the largest config seen so far).
func (b *chanBuf) lanes(n int) (re, im []float64) {
	if cap(b.laneRe) < n || cap(b.laneIm) < n {
		b.laneRe = make([]float64, n)
		b.laneIm = make([]float64, n)
	}
	return b.laneRe[:n], b.laneIm[:n]
}

// lanes32 is lanes for the float32 tone scratch.
func (b *chanBuf) lanes32(n int) (re, im []float32) {
	if cap(b.laneRe32) < n || cap(b.laneIm32) < n {
		b.laneRe32 = make([]float32, n)
		b.laneIm32 = make([]float32, n)
	}
	return b.laneRe32[:n], b.laneIm32[:n]
}

// framePool recycles chanBufs for one synthesis plan. A drive-by synthesizes
// and transforms two frames per pose (~560 per pass), and with the frame
// loop running on a worker pool the buffers would otherwise be reallocated
// from every worker; recycling them keeps the steady-state allocation rate
// near zero. Reuse is by capacity, not exact shape: a pooled buffer big
// enough for the requested [numRx][n] is resliced to it, so a plan serving
// heterogeneous profile shapes keeps recycling one high-water-mark buffer
// instead of degrading to a malloc per frame whenever the shape flips. Only
// a buffer strictly too small for the request is dropped for the garbage
// collector.
//
// Pools moved from one process-global to per-plan ownership with the Session
// handle: releasing a plan's owner releases its buffers, and two handles
// never share pool contents.
type framePool struct {
	p sync.Pool
}

// acquire returns a [numRx][n] buffer homed to this pool, zeroed when zero
// is set (frame synthesis accumulates with +=; the range transform
// overwrites every element and skips the clear).
func (fp *framePool) acquire(numRx, n int, zero bool) *chanBuf {
	need := numRx * n
	if v := fp.p.Get(); v != nil {
		b := v.(*chanBuf)
		if cap(b.flat) >= need {
			b.reshape(numRx, n)
			if zero {
				clear(b.flat)
			}
			b.home = fp
			return b
		}
		// Too small for this request: drop it and allocate at the new
		// high-water mark, which then serves every smaller shape.
	}
	b := newChanBuf(numRx, n)
	b.home = fp
	return b
}

// put returns a buffer to the pool.
func (fp *framePool) put(b *chanBuf) {
	b.home = fp
	fp.p.Put(b)
}

// adoptFrom drains other's buffers into this pool. Used when two goroutines
// race to build the same synthesis plan: the winner adopts the buffers the
// discarded plan pre-warmed, so no pooled memory strands in an unreachable
// pool.
func (fp *framePool) adoptFrom(other *framePool) {
	for {
		v := other.p.Get()
		if v == nil {
			return
		}
		fp.put(v.(*chanBuf))
	}
}

// ReleaseFrame returns a frame's sample buffer to its plan's pool. The
// caller must not touch the frame afterwards; frames that escape to
// long-lived results should simply not be released.
func ReleaseFrame(f Frame) {
	if f.buf != nil && f.buf.home != nil {
		f.buf.home.put(f.buf)
	}
}

// ReleaseProfile returns a range profile's bin buffers to its plan's pool.
// Same contract as ReleaseFrame.
func ReleaseProfile(rp RangeProfile) {
	if rp.buf != nil && rp.buf.home != nil {
		rp.buf.home.put(rp.buf)
	}
}
