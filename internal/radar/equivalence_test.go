package radar

// Frame-equivalence suite: pins the plan/executor front-end (SynthPlan ->
// contiguous Frame -> fused window+IFFT range transform) to the pre-refactor
// reference implementations, re-derived here sample by sample. The plan path
// reorders floating-point operations (structure-of-arrays tone lanes spread
// across channels by steering phasors, fused window butterfly), so equality
// is checked to a 1e-9 relative tolerance; the quantizer, which would
// amplify an ulp into a full step, is pinned bit-exactly.
//
// Noise contract: since the batched-Gaussian PR, thermal noise is drawn
// from dsp.Gauss (a ziggurat over a SplitMix64 sub-stream), a deliberate
// replacement of the stdlib NormFloat64 sequence. The reference here
// therefore consumes the same Gauss stream the executor does — the suite
// pins the tone/window/quantizer arithmetic, and the generator itself is
// pinned by its own moment and determinism tests in internal/dsp.

import (
	"math"
	"math/rand"
	"testing"

	"ros/internal/dsp"
	"ros/internal/em"
)

// refSynthesize is the pre-refactor Config.Synthesize: per-channel Sincos
// for the steering phase, single-lane rotation recurrence, noise pass in
// channel-major order, then AGC quantization with its own full-frame scan.
func refSynthesize(c Config, scatterers []Scatterer, g *dsp.Gauss) [][]complex128 {
	lambda := c.Wavelength()
	n := c.Samples
	out := make([][]complex128, c.NumRx)
	for k := range out {
		out[k] = make([]complex128, n)
	}
	for _, sc := range scatterers {
		if sc.Amplitude <= 0 || sc.Range <= 0 {
			continue
		}
		fb := 2*c.Slope*sc.Range/em.C + 2*sc.RadialVelocity/lambda
		base := 4*math.Pi*sc.Range/lambda + sc.Phase
		sinAz := math.Sin(sc.Azimuth)
		ds, dc := math.Sincos(-2 * math.Pi * fb / c.SampleRate)
		step := complex(dc, ds)
		for k := 0; k < c.NumRx; k++ {
			aoa := 2 * math.Pi * float64(k) * c.RxSpacing * sinAz / lambda
			s0, c0 := math.Sincos(-(base + aoa))
			cur := complex(sc.Amplitude*c0, sc.Amplitude*s0)
			ch := out[k]
			for t := range ch {
				ch[t] += cur
				cur *= step
			}
		}
	}
	if g != nil {
		// Consume the Gauss stream in the executor's order: one interleaved
		// re/im draw pair per sample, channel-major.
		sigma := math.Sqrt(c.NoisePerBin()*float64(n)) / math.Sqrt2
		for k := range out {
			ch := out[k]
			for t := range ch {
				ch[t] += complex(g.Norm()*sigma, g.Norm()*sigma)
			}
		}
	}
	if c.ADCBits > 0 {
		refQuantize(out, c.ADCBits)
	}
	return out
}

func refQuantize(chans [][]complex128, bits int) {
	peak := 0.0
	for _, ch := range chans {
		for _, v := range ch {
			if a := math.Abs(real(v)); a > peak {
				peak = a
			}
			if a := math.Abs(imag(v)); a > peak {
				peak = a
			}
		}
	}
	if peak == 0 {
		return
	}
	full := peak * 1.1
	levels := float64(int(1) << (bits - 1))
	step := full / levels
	q := func(x float64) float64 {
		return (math.Floor(x/step) + 0.5) * step
	}
	for _, ch := range chans {
		for t, v := range ch {
			ch[t] = complex(q(real(v)), q(imag(v)))
		}
	}
}

// refRangeProfile is the pre-refactor Config.RangeProfile: explicit Hann
// multiply normalized by the coherent gain, then an in-place IFFT per
// channel.
func refRangeProfile(c Config, chans [][]complex128) [][]complex128 {
	win, gain := dsp.Hann.CachedCoefficients(c.Samples)
	invGain := 1 / gain
	out := make([][]complex128, len(chans))
	for k, ch := range chans {
		bins := make([]complex128, len(ch))
		for i, v := range ch {
			bins[i] = v * complex(win[i]*invGain, 0)
		}
		dsp.IFFTInPlace(bins)
		out[k] = bins
	}
	return out
}

// randomScene draws a scatterer set spanning the radar's unambiguous range
// and field of view, with sub-bin range offsets, Doppler, and a wide
// amplitude spread.
func randomScene(rng *rand.Rand, c Config) []Scatterer {
	sc := make([]Scatterer, 1+rng.Intn(12))
	maxR := c.MaxRange() * 0.9
	for i := range sc {
		sc[i] = Scatterer{
			Range:          0.5 + rng.Float64()*maxR,
			Azimuth:        (rng.Float64() - 0.5) * math.Pi / 2,
			Amplitude:      math.Pow(10, -6+4*rng.Float64()),
			Phase:          rng.Float64() * 2 * math.Pi,
			RadialVelocity: (rng.Float64() - 0.5) * 40,
		}
	}
	return sc
}

// relTol is the acceptance bound: the plan path must match the reference
// within 1e-9 relative to the frame's peak magnitude.
const relTol = 1e-9

func maxRelDiff(t *testing.T, got Frame, ref [][]complex128) float64 {
	t.Helper()
	if got.NumRx != len(ref) {
		t.Fatalf("frame has %d channels, reference %d", got.NumRx, len(ref))
	}
	scale := 0.0
	for _, ch := range ref {
		for _, v := range ch {
			if a := math.Hypot(real(v), imag(v)); a > scale {
				scale = a
			}
		}
	}
	if scale == 0 {
		scale = 1
	}
	worst := 0.0
	for k, ch := range ref {
		gotCh := got.Channel(k)
		if len(gotCh) != len(ch) {
			t.Fatalf("channel %d has %d samples, reference %d", k, len(gotCh), len(ch))
		}
		for i, v := range ch {
			d := gotCh[i] - v
			if e := math.Hypot(real(d), imag(d)) / scale; e > worst {
				worst = e
			}
		}
	}
	return worst
}

func equivalenceConfigs() map[string]Config {
	base := TI1443()
	// This suite pins the executor to the pre-refactor float64 arithmetic
	// draw for draw, so it runs on the full-precision lane; the float32
	// lane has its own divergence-budget suite (equivalence32_test.go).
	base.ForceFloat64 = true
	adc := base
	adc.ADCBits = 12
	coarse := base
	coarse.ADCBits = 4
	odd := base
	odd.Samples = 200 // exercises the Bluestein range plan
	odd.ADCBits = 10
	return map[string]Config{"ideal": base, "adc12": adc, "adc4": coarse, "bluestein200": odd}
}

// TestSynthesizeMatchesReference pins the plan executor to the pre-refactor
// synthesis on random scenes, noiseless and noisy, with and without the
// quantizer.
func TestSynthesizeMatchesReference(t *testing.T) {
	for name, c := range equivalenceConfigs() {
		t.Run(name, func(t *testing.T) {
			plan := c.NewSynthPlan()
			for trial := 0; trial < 8; trial++ {
				seed := int64(1000*trial + 7)
				scene := randomScene(rand.New(rand.NewSource(seed)), c)
				for _, noisy := range []bool{false, true} {
					var gPlan, gRef *dsp.Gauss
					if noisy {
						gPlan = dsp.NewGauss(seed + 1)
						gRef = dsp.NewGauss(seed + 1)
					}
					got := plan.Synthesize(scene, gPlan)
					ref := refSynthesize(c, scene, gRef)
					if err := maxRelDiff(t, got, ref); err > relTol {
						t.Errorf("trial %d noisy=%v: max relative error %.3g > %.0g",
							trial, noisy, err, relTol)
					}
					ReleaseFrame(got)
				}
			}
		})
	}
}

// TestQuantizedSynthesisSameCells checks that the plan's quantizer (fused
// AGC peak tracking, step arithmetic matching the old (peak*1.1)/levels
// expression) puts every sample in the same quantization cell as the
// reference. The synthesized samples differ from the reference by ulps
// (reordered floating point), so the quantized outputs carry the same ulp
// noise — but a Floor flip would move a sample by a whole step, ~1% of the
// frame peak at 8 bits, and is what this test would catch.
func TestQuantizedSynthesisSameCells(t *testing.T) {
	c := TI1443()
	c.ADCBits = 8
	c.ForceFloat64 = true // the reference is the f64 noise stream
	// One quantizer step relative to the AGC peak: 1.1 / 2^(bits-1).
	stepRel := 1.1 / float64(int(1)<<(c.ADCBits-1))
	plan := c.NewSynthPlan()
	for trial := 0; trial < 8; trial++ {
		seed := int64(31*trial + 3)
		scene := randomScene(rand.New(rand.NewSource(seed)), c)
		got := plan.Synthesize(scene, dsp.NewGauss(seed+2))
		ref := refSynthesize(c, scene, dsp.NewGauss(seed+2))
		if err := maxRelDiff(t, got, ref); err > stepRel*1e-6 {
			t.Errorf("trial %d: max relative error %.3g suggests a quantizer cell flip (step %.3g)",
				trial, err, stepRel)
		}
		ReleaseFrame(got)
	}
}

// TestRangeProfileMatchesReference pins the fused window+IFFT range
// transform to the explicit window-then-IFFT reference, on frames from the
// same random scenes (power-of-two and Bluestein sizes).
func TestRangeProfileMatchesReference(t *testing.T) {
	for name, c := range equivalenceConfigs() {
		t.Run(name, func(t *testing.T) {
			plan := c.NewSynthPlan()
			for trial := 0; trial < 8; trial++ {
				seed := int64(500*trial + 11)
				scene := randomScene(rand.New(rand.NewSource(seed)), c)
				f := plan.Synthesize(scene, dsp.NewGauss(seed+1))
				refChans := make([][]complex128, c.NumRx)
				for k := range refChans {
					refChans[k] = append([]complex128(nil), f.Channel(k)...)
				}
				rp := plan.RangeProfile(f)
				ref := refRangeProfile(c, refChans)
				got := Frame{Data: flatten(rp.Bins), NumRx: c.NumRx, Samples: c.Samples}
				if err := maxRelDiff(t, got, ref); err > relTol {
					t.Errorf("trial %d: max relative error %.3g > %.0g", trial, err, relTol)
				}
				ReleaseFrame(f)
				ReleaseProfile(rp)
			}
		})
	}
}

func flatten(chans [][]complex128) []complex128 {
	var out []complex128
	for _, ch := range chans {
		out = append(out, ch...)
	}
	return out
}
