package radar

import (
	"sync"

	"ros/internal/obs"
)

// The incremental point-cloud scan: frame-to-frame, the set of range bins
// that can produce detections barely moves (a drive-by shifts the tag by a
// fraction of a bin per frame), so a frame can seed its candidate loop from
// the previous frame's above-threshold bins plus a guard band. The
// restriction is provably byte-identical to the full scan: the frame first
// verifies that no bin OUTSIDE the hinted set clears this frame's threshold
// (one cheap max pass), and any frame where that fails — pop-in targets,
// fault transients, a moved noise floor — takes the full loop instead. A
// periodic refresh bounds how long the process trusts its own hints, and
// ScanState.Reset restores cold-start behavior after dropped or corrupt
// frames.

// scanRefreshInterval is the maximum number of consecutive hint-restricted
// frames before a scheduled full scan; at the canonical 1 kHz frame rate
// this re-walks the whole profile every 32 ms.
const scanRefreshInterval = 32

// scanGuardBins pads each above-threshold bin on both sides when building
// the next frame's hint set, covering sub-bin target migration and
// local-maximum shifts between neighbors. The guard affects only how often
// the coverage check falls back to a full scan, never the output.
const scanGuardBins = 2

var (
	mScanFull = obs.Default.Counter("ros_radar_scan_full_total",
		"Point-cloud scans that walked every range bin (cold start, refresh, fallback, or incremental disabled).")
	mScanIncremental = obs.Default.Counter("ros_radar_scan_incremental_total",
		"Point-cloud scans restricted to the previous frame's hinted bins.")
)

// ScanState carries the frame-to-frame detection context of one radar
// stream: the previous frame's noise-floor estimate (seeding the median
// selection) and its above-threshold bins with guard band (seeding the
// candidate loop). The zero value is a valid cold state. Not safe for
// concurrent use; pipelines keep one per worker.
type ScanState struct {
	// noise is the previous frame's noise-floor estimate, used as the
	// median selection's pivot hint.
	noise float64
	// active marks the hinted bins; hints lists them in ascending order.
	active []bool
	hints  []int
	// frames counts consecutive hint-restricted scans since the last full
	// one, driving the refresh interval.
	frames int
	// valid reports whether the state describes the immediately preceding
	// frame; false forces a full scan (cold start, after Reset).
	valid bool
}

// Reset returns the state to cold start: the next scan walks every bin.
// Pipelines call it after any dropped or corrupt frame, where the "previous
// frame" the hints describe never reached detection.
func (st *ScanState) Reset() {
	st.valid = false
	st.frames = 0
	st.noise = 0
	for _, i := range st.hints {
		st.active[i] = false
	}
	st.hints = st.hints[:0]
}

// update rebuilds the hint set from this frame's power profile: every bin
// at or above the detection threshold, padded by the guard band. The
// resulting hints are ascending (ranges are emitted left to right and only
// extend rightward past already-marked bins).
func (st *ScanState) update(n int, power []float64, thresh, noise float64, incremental bool) {
	if len(st.active) != n {
		st.active = make([]bool, n)
		st.hints = st.hints[:0]
	}
	for _, i := range st.hints {
		st.active[i] = false
	}
	st.hints = st.hints[:0]
	for i := 1; i < n-1; i++ {
		if power[i] < thresh {
			continue
		}
		lo, hi := i-scanGuardBins, i+scanGuardBins
		if lo < 1 {
			lo = 1
		}
		if hi > n-2 {
			hi = n - 2
		}
		for j := lo; j <= hi; j++ {
			if !st.active[j] {
				st.active[j] = true
				st.hints = append(st.hints, j)
			}
		}
	}
	if incremental {
		st.frames++
	} else {
		st.frames = 0
	}
	st.noise = noise
	st.valid = true
}

// ScanStatePool recycles ScanStates for one resource handle: a pipeline
// worker takes a state per frame, and pooling them per handle (instead of
// in a package global) lets the handle's owner drop them all at once.
// States come out carrying whatever hints their last holder accumulated —
// deliberately: the hint set is a performance prior, never an output input
// (the scan's coverage check falls back to a full walk whenever the hints
// do not describe the frame at hand), and resetting on Get would break the
// frame-to-frame carry-over the incremental scan exists for.
type ScanStatePool struct {
	p sync.Pool
}

// Get returns a scan state, warm when the pool has one.
func (sp *ScanStatePool) Get() *ScanState {
	if v := sp.p.Get(); v != nil {
		return v.(*ScanState)
	}
	return new(ScanState)
}

// Put returns a state to the pool. The caller must not touch it afterwards.
func (sp *ScanStatePool) Put(st *ScanState) {
	sp.p.Put(st)
}
