package radar

import (
	"math"
	"math/rand"
	"testing"

	"ros/internal/geom"
)

func TestTI1443ElevationValidates(t *testing.T) {
	e := TI1443Elevation()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := e
	bad.TxHeight = 0
	if bad.Validate() == nil {
		t.Error("zero Tx height accepted")
	}
	bad = e
	bad.NumTx = 3
	if bad.Validate() == nil {
		t.Error("wrong Tx count accepted")
	}
}

func TestElevationMonopulse(t *testing.T) {
	e := TI1443Elevation()
	for _, elDeg := range []float64{-20, -5, 0, 8, 25} {
		el := geom.Rad(elDeg)
		burst := e.SynthesizeElevation([]Scatterer{{
			Range: 4, Azimuth: 0, Elevation: el, Amplitude: 1e-4,
		}}, nil)
		got, err := e.EstimateElevation(burst, 4, 0)
		if err != nil {
			t.Fatalf("el=%g: %v", elDeg, err)
		}
		if math.Abs(geom.Deg(got)-elDeg) > 1 {
			t.Errorf("el estimate = %g deg, want %g", geom.Deg(got), elDeg)
		}
	}
}

func TestElevationWithNoise(t *testing.T) {
	e := TI1443Elevation()
	rng := rand.New(rand.NewSource(12))
	el := geom.Rad(10)
	amp := math.Sqrt(e.NoisePerBin()) * 100 // 40 dB SNR
	burst := e.SynthesizeElevation([]Scatterer{{
		Range: 3.5, Azimuth: geom.Rad(15), Elevation: el, Amplitude: amp,
	}}, rng)
	got, err := e.EstimateElevation(burst, 3.5, geom.Rad(15))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(geom.Deg(got)-10) > 2 {
		t.Errorf("noisy elevation = %g deg, want ~10", geom.Deg(got))
	}
}

func TestHeightOf(t *testing.T) {
	// A tag 2 m above the radar at 4 m ground range subtends atan(2/4).
	el := math.Atan2(2, 4)
	if h := HeightOf(el, 4); math.Abs(h-2) > 1e-12 {
		t.Errorf("height = %g, want 2", h)
	}
}

func TestElevationErrors(t *testing.T) {
	e := TI1443Elevation()
	burst := e.SynthesizeElevation([]Scatterer{{Range: 3, Amplitude: 1e-4}}, nil)
	if _, err := e.EstimateElevation(burst[:1], 3, 0); err == nil {
		t.Error("short burst accepted")
	}
	empty := e.SynthesizeElevation(nil, nil)
	if _, err := e.EstimateElevation(empty, 3, 0); err == nil {
		t.Error("empty return accepted")
	}
}
