package track

import (
	"math"
	"math/rand"
	"testing"

	"ros/internal/dsp"
	"ros/internal/geom"
)

func straightLine(n int, step float64) []geom.Vec3 {
	out := make([]geom.Vec3, n)
	for i := range out {
		out[i] = geom.Vec3{X: float64(i) * step, Y: 3}
	}
	return out
}

func TestZeroErrorIsExact(t *testing.T) {
	truth := straightLine(100, 0.01)
	est, err := Tracker{}.Estimate(truth, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if est[i] != truth[i] {
			t.Fatalf("frame %d drifted with zero error", i)
		}
	}
}

func TestDriftMagnitudeTracksSetting(t *testing.T) {
	truth := straightLine(2000, 0.01) // 20 m traveled
	for _, rel := range []float64{0.02, 0.06, 0.10} {
		// Average the realized drift across seeds (it is a random
		// variable of the same order as the setting).
		var drifts []float64
		for seed := int64(0); seed < 40; seed++ {
			est, err := Tracker{RelativeError: rel}.Estimate(truth, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			drifts = append(drifts, RelativeErrorOf(truth, est))
		}
		mean := dsp.Mean(drifts)
		if mean < rel*0.6 || mean > rel*1.4 {
			t.Errorf("setting %g: mean realized drift %g out of range", rel, mean)
		}
	}
}

func TestDriftGrowsWithSetting(t *testing.T) {
	truth := straightLine(2000, 0.01)
	avg := func(rel float64) float64 {
		var sum float64
		for seed := int64(0); seed < 40; seed++ {
			est, _ := Tracker{RelativeError: rel}.Estimate(truth, rand.New(rand.NewSource(seed)))
			sum += RelativeErrorOf(truth, est)
		}
		return sum / 40
	}
	lo, hi := avg(0.02), avg(0.10)
	if hi <= lo {
		t.Errorf("drift did not grow with setting: %g vs %g", lo, hi)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := (Tracker{}).Estimate(nil, nil); err == nil {
		t.Error("empty trajectory accepted")
	}
	if _, err := (Tracker{RelativeError: -1}).Estimate(straightLine(2, 1), nil); err == nil {
		t.Error("negative error accepted")
	}
	if _, err := (Tracker{RelativeError: 0.1}).Estimate(straightLine(2, 1), nil); err == nil {
		t.Error("nil rng accepted for nonzero error")
	}
}

func TestEstimateDeterministic(t *testing.T) {
	truth := straightLine(500, 0.01)
	a, err := Tracker{RelativeError: 0.05}.Estimate(truth, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Tracker{RelativeError: 0.05}.Estimate(truth, rand.New(rand.NewSource(3)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different estimates")
		}
	}
}

func TestEstimateStartsAtTruth(t *testing.T) {
	truth := straightLine(100, 0.01)
	est, err := Tracker{RelativeError: 0.1}.Estimate(truth, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if est[0] != truth[0] {
		t.Error("estimate does not start at the true position")
	}
}

func TestRelativeErrorOfEdgeCases(t *testing.T) {
	if RelativeErrorOf(nil, nil) != 0 {
		t.Error("nil input")
	}
	truth := straightLine(5, 0)
	if RelativeErrorOf(truth, truth) != 0 {
		t.Error("zero distance")
	}
	if RelativeErrorOf(straightLine(5, 1), straightLine(4, 1)) != 0 {
		t.Error("length mismatch")
	}
	a := straightLine(3, 1)
	b := straightLine(3, 1)
	b[2] = b[2].Add(geom.Vec3{Y: 0.2})
	if got := RelativeErrorOf(a, b); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("relative error = %g, want 0.1", got)
	}
}
