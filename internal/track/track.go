// Package track models vehicle self-tracking (Sec 6): the decoder needs the
// radar's position at every frame to merge point clouds and to resample the
// tag RCS over u = cos(theta). Modern vehicles interpolate IMU and wheel
// speed; the residual is a slowly growing drift, which Fig 16d sweeps from
// 2 to 10 percent of distance traveled.
package track

import (
	"fmt"
	"math"
	"math/rand"

	"ros/internal/geom"
)

// Tracker perturbs ground-truth trajectories with dead-reckoning drift.
type Tracker struct {
	// RelativeError is the drift magnitude as a fraction of distance
	// traveled (Fig 16d's x axis: 0.02 to 0.10).
	RelativeError float64
	// CorrelationFrames sets the smoothness of the drift process: the
	// per-frame scale error is an AR(1) process with this correlation
	// length (default 50 frames).
	CorrelationFrames int
}

// Estimate returns estimated radar positions for the true per-frame
// positions: each frame's displacement is scaled by (1 + e_t), where e_t is
// a smooth zero-mean process with standard deviation RelativeError, so the
// accumulated position error grows roughly as RelativeError times the
// distance traveled — the standard dead-reckoning error model of the
// wheel-IMU literature the paper cites [60, 61].
func (tr Tracker) Estimate(truth []geom.Vec3, rng *rand.Rand) ([]geom.Vec3, error) {
	if len(truth) == 0 {
		return nil, fmt.Errorf("track: empty trajectory")
	}
	if tr.RelativeError < 0 {
		return nil, fmt.Errorf("track: negative relative error %g", tr.RelativeError)
	}
	out := make([]geom.Vec3, len(truth))
	out[0] = truth[0]
	if tr.RelativeError == 0 || len(truth) == 1 {
		copy(out, truth)
		return out, nil
	}
	if rng == nil {
		return nil, fmt.Errorf("track: drift injection requires an rng")
	}
	corr := tr.CorrelationFrames
	if corr <= 0 {
		corr = 50
	}
	alpha := math.Exp(-1 / float64(corr))
	// Controlled drift as in Fig 16d: a per-run odometry scale bias of the
	// requested relative magnitude (random sign), plus a smaller smooth
	// AR(1) jitter that keeps the error from being a pure rescale.
	bias := tr.RelativeError
	if rng.Intn(2) == 1 {
		bias = -bias
	}
	sigma := 0.3 * tr.RelativeError
	e := rng.NormFloat64() * sigma
	drive := math.Sqrt(1 - alpha*alpha)
	for i := 1; i < len(truth); i++ {
		step := truth[i].Sub(truth[i-1])
		out[i] = out[i-1].Add(step.Scale(1 + bias + e))
		e = alpha*e + drive*sigma*rng.NormFloat64()
	}
	return out, nil
}

// RelativeErrorOf measures the realized drift of an estimated trajectory:
// the final position error divided by the distance traveled.
func RelativeErrorOf(truth, est []geom.Vec3) float64 {
	if len(truth) < 2 || len(truth) != len(est) {
		return 0
	}
	dist := 0.0
	for i := 1; i < len(truth); i++ {
		dist += truth[i].Dist(truth[i-1])
	}
	if dist == 0 {
		return 0
	}
	return truth[len(truth)-1].Dist(est[len(est)-1]) / dist
}
