// Package optim implements the differential-evolution genetic algorithm
// (DE-GA) that Sec 4.3 of the RoS paper uses as a meta-optimization scheme
// to search for the PSVAA phase weights and vertical positions that produce
// a flat-top elevation beam.
//
// The implementation follows Storn & Price's classic DE/rand/1/bin strategy
// [55 in the paper]: for every member of a population, a mutant is formed
// from three distinct random members (a + F*(b - c)), binomially crossed
// with the member, and kept if it scores better.
package optim

import (
	"fmt"
	"math"
	"math/rand"
)

// Objective scores a candidate vector; lower is better.
type Objective func(x []float64) float64

// Bounds restricts one dimension of the search space.
type Bounds struct {
	Lo, Hi float64
}

// Config holds the DE hyper-parameters.
type Config struct {
	// PopSize is the population size. If zero, 10*dim is used.
	PopSize int
	// F is the differential weight in [0, 2]. If zero, 0.7 is used.
	F float64
	// CR is the crossover probability in [0, 1]. If zero, 0.9 is used.
	CR float64
	// Generations is the iteration budget. If zero, 200 is used.
	Generations int
	// Tol stops early when the population's best-worst score spread falls
	// below it. Zero disables early stopping.
	Tol float64
}

// Result reports the outcome of a DE run.
type Result struct {
	// X is the best vector found.
	X []float64
	// Score is the objective value at X.
	Score float64
	// Generations is the number of generations executed.
	Generations int
	// Evals is the number of objective evaluations.
	Evals int
}

// Minimize runs DE/rand/1/bin within bounds and returns the best candidate.
// The rng drives all stochastic choices, making runs reproducible for a
// fixed seed. An error is returned for an empty search space, a nil
// objective, or a nil rng.
func Minimize(obj Objective, bounds []Bounds, cfg Config, rng *rand.Rand) (Result, error) {
	dim := len(bounds)
	if dim == 0 {
		return Result{}, fmt.Errorf("optim: empty search space")
	}
	if obj == nil {
		return Result{}, fmt.Errorf("optim: nil objective")
	}
	if rng == nil {
		return Result{}, fmt.Errorf("optim: nil rng")
	}
	for i, b := range bounds {
		if b.Hi < b.Lo || math.IsNaN(b.Lo) || math.IsNaN(b.Hi) {
			return Result{}, fmt.Errorf("optim: invalid bounds[%d] = [%g, %g]", i, b.Lo, b.Hi)
		}
	}
	if cfg.PopSize == 0 {
		cfg.PopSize = 10 * dim
	}
	if cfg.PopSize < 4 {
		cfg.PopSize = 4
	}
	if cfg.F == 0 {
		cfg.F = 0.7
	}
	if cfg.CR == 0 {
		cfg.CR = 0.9
	}
	if cfg.Generations == 0 {
		cfg.Generations = 200
	}

	pop := make([][]float64, cfg.PopSize)
	scores := make([]float64, cfg.PopSize)
	evals := 0
	for i := range pop {
		pop[i] = make([]float64, dim)
		for d, b := range bounds {
			pop[i][d] = b.Lo + rng.Float64()*(b.Hi-b.Lo)
		}
		scores[i] = obj(pop[i])
		evals++
	}

	trial := make([]float64, dim)
	gen := 0
	for ; gen < cfg.Generations; gen++ {
		for i := range pop {
			a, b, c := pick3(rng, cfg.PopSize, i)
			jRand := rng.Intn(dim)
			for d := range trial {
				if d == jRand || rng.Float64() < cfg.CR {
					v := pop[a][d] + cfg.F*(pop[b][d]-pop[c][d])
					// Reflect out-of-bounds values back into range.
					v = reflect(v, bounds[d])
					trial[d] = v
				} else {
					trial[d] = pop[i][d]
				}
			}
			s := obj(trial)
			evals++
			if s <= scores[i] {
				copy(pop[i], trial)
				scores[i] = s
			}
		}
		if cfg.Tol > 0 {
			lo, hi := scores[0], scores[0]
			for _, s := range scores[1:] {
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
			}
			if hi-lo < cfg.Tol {
				gen++
				break
			}
		}
	}

	bestIdx := 0
	for i, s := range scores {
		if s < scores[bestIdx] {
			bestIdx = i
		}
		_ = s
	}
	best := make([]float64, dim)
	copy(best, pop[bestIdx])
	return Result{X: best, Score: scores[bestIdx], Generations: gen, Evals: evals}, nil
}

// pick3 draws three distinct population indices, all different from skip.
func pick3(rng *rand.Rand, n, skip int) (a, b, c int) {
	for {
		a = rng.Intn(n)
		if a != skip {
			break
		}
	}
	for {
		b = rng.Intn(n)
		if b != skip && b != a {
			break
		}
	}
	for {
		c = rng.Intn(n)
		if c != skip && c != a && c != b {
			break
		}
	}
	return
}

// reflect folds v back into [b.Lo, b.Hi] by mirroring at the violated bound;
// if the overshoot is too large for one mirror to fix, v is clamped at the
// bound it originally violated.
func reflect(v float64, b Bounds) float64 {
	switch {
	case v < b.Lo:
		v = 2*b.Lo - v
		if v > b.Hi {
			return b.Lo
		}
	case v > b.Hi:
		v = 2*b.Hi - v
		if v < b.Lo {
			return b.Hi
		}
	}
	return v
}
