package optim

import (
	"math"
	"math/rand"
	"testing"
)

func sphere(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}

func rosenbrock(x []float64) float64 {
	s := 0.0
	for i := 0; i < len(x)-1; i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
	}
	return s
}

func rastrigin(x []float64) float64 {
	s := 10 * float64(len(x))
	for _, v := range x {
		s += v*v - 10*math.Cos(2*math.Pi*v)
	}
	return s
}

func uniformBounds(dim int, lo, hi float64) []Bounds {
	b := make([]Bounds, dim)
	for i := range b {
		b[i] = Bounds{lo, hi}
	}
	return b
}

func TestMinimizeSphere(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res, err := Minimize(sphere, uniformBounds(5, -5, 5), Config{Generations: 300}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score > 1e-6 {
		t.Errorf("sphere minimum = %g, want < 1e-6", res.Score)
	}
	for i, v := range res.X {
		if math.Abs(v) > 1e-3 {
			t.Errorf("x[%d] = %g, want ~0", i, v)
		}
	}
}

func TestMinimizeRosenbrock(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	res, err := Minimize(rosenbrock, uniformBounds(4, -2, 2), Config{Generations: 800, PopSize: 60}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score > 1e-3 {
		t.Errorf("rosenbrock minimum = %g, want < 1e-3", res.Score)
	}
}

func TestMinimizeRastriginMultimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	res, err := Minimize(rastrigin, uniformBounds(4, -5.12, 5.12), Config{Generations: 600, PopSize: 80}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// DE should escape local minima of Rastrigin at this budget.
	if res.Score > 1e-2 {
		t.Errorf("rastrigin minimum = %g, want < 1e-2", res.Score)
	}
}

func TestMinimizeRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	bounds := []Bounds{{1, 2}, {-3, -2}}
	// The unconstrained minimum (0, 0) is outside the bounds, so the best
	// candidate must sit on the boundary closest to it.
	res, err := Minimize(sphere, bounds, Config{Generations: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for d, b := range bounds {
		if res.X[d] < b.Lo-1e-12 || res.X[d] > b.Hi+1e-12 {
			t.Errorf("x[%d] = %g escaped bounds [%g, %g]", d, res.X[d], b.Lo, b.Hi)
		}
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]+2) > 1e-3 {
		t.Errorf("constrained minimum = %v, want ~(1, -2)", res.X)
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	run := func() Result {
		rng := rand.New(rand.NewSource(23))
		res, err := Minimize(sphere, uniformBounds(3, -1, 1), Config{Generations: 50}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Score != b.Score {
		t.Errorf("same seed gave different scores: %g vs %g", a.Score, b.Score)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Errorf("same seed gave different x[%d]: %g vs %g", i, a.X[i], b.X[i])
		}
	}
}

func TestMinimizeEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	res, err := Minimize(sphere, uniformBounds(2, -1, 1), Config{Generations: 10000, Tol: 1e-9}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations >= 10000 {
		t.Errorf("early stopping did not trigger (ran %d generations)", res.Generations)
	}
}

func TestMinimizeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Minimize(sphere, nil, Config{}, rng); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := Minimize(nil, uniformBounds(1, 0, 1), Config{}, rng); err == nil {
		t.Error("nil objective accepted")
	}
	if _, err := Minimize(sphere, uniformBounds(1, 0, 1), Config{}, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := Minimize(sphere, []Bounds{{2, 1}}, Config{}, rng); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := Minimize(sphere, []Bounds{{math.NaN(), 1}}, Config{}, rng); err == nil {
		t.Error("NaN bounds accepted")
	}
}

func TestMinimizeFixedPointBounds(t *testing.T) {
	// Degenerate bounds (Lo == Hi) pin a dimension.
	rng := rand.New(rand.NewSource(31))
	bounds := []Bounds{{2, 2}, {-1, 1}}
	res, err := Minimize(sphere, bounds, Config{Generations: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] != 2 {
		t.Errorf("pinned dimension moved: %g", res.X[0])
	}
}

func TestReflect(t *testing.T) {
	b := Bounds{0, 1}
	if got := reflect(-0.25, b); got != 0.25 {
		t.Errorf("reflect(-0.25) = %g, want 0.25", got)
	}
	if got := reflect(1.25, b); got != 0.75 {
		t.Errorf("reflect(1.25) = %g, want 0.75", got)
	}
	if got := reflect(-5, b); got != 0 {
		t.Errorf("reflect(-5) = %g, want clamp to 0", got)
	}
	if got := reflect(9, b); got != 1 {
		t.Errorf("reflect(9) = %g, want clamp to 1", got)
	}
	if got := reflect(0.5, b); got != 0.5 {
		t.Errorf("reflect(0.5) = %g, want unchanged", got)
	}
}

func TestPick3Distinct(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 200; i++ {
		a, b, c := pick3(rng, 5, 2)
		if a == 2 || b == 2 || c == 2 {
			t.Fatal("pick3 returned the skipped index")
		}
		if a == b || b == c || a == c {
			t.Fatal("pick3 returned duplicate indices")
		}
	}
}
