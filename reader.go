package ros

import (
	"context"
	"fmt"
	"time"

	"ros/internal/em"
	"ros/internal/engine"
	"ros/internal/fault"
	"ros/internal/obs"
	"ros/internal/radar"
	"ros/internal/roserr"
	"ros/internal/sim"
	"ros/internal/trace"
)

// Reader is a vehicle-mounted radar configuration for reading tags.
type Reader struct {
	radar radar.Config
	// engine is the optional resource handle reads draw memoized state
	// from; nil uses the process-global default caches (see WithEngine).
	engine *engine.Engine
}

// ReaderOption customizes NewReader.
type ReaderOption func(*Reader)

// WithCommercialFrontEnd swaps the TI evaluation front end for the
// commercial automotive radar of Sec 8 (NF 9 dB, EIRP 50 dBm), extending the
// reading range from ~7 m to ~52 m.
func WithCommercialFrontEnd() ReaderOption {
	return func(r *Reader) {
		r.radar.FrontEnd = em.CommercialRadar()
	}
}

// WithFrameRate overrides the radar frame repetition rate in Hz.
func WithFrameRate(hz float64) ReaderOption {
	return func(r *Reader) {
		r.radar.FrameRate = hz
	}
}

// WithFloat64Reference forces full float64 frame synthesis even where the
// ADC word length leaves float32 headroom. Reads slow down and the thermal
// noise stream changes (the float32 lane draws a differently-batched
// realization); decoded bits do not. For A/B verification and numerical
// forensics, not production reads.
func WithFloat64Reference() ReaderOption {
	return func(r *Reader) {
		r.radar.ForceFloat64 = true
	}
}

// NewReader builds a reader around the paper's TI IWR1443 configuration.
func NewReader(opts ...ReaderOption) *Reader {
	r := &Reader{radar: radar.TI1443()}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// MaxRange returns the link-budget reading range in meters for the paper's
// 32-module tag (Sec 5.3).
func (r *Reader) MaxRange() float64 {
	return r.radar.FrontEnd.MaxRange(em.TagRCS32StackDBsm, r.radar.CenterFrequency)
}

// ReadOptions configures one simulated drive-by read.
type ReadOptions struct {
	// Standoff is the closest radar-to-tag distance in meters (default 3).
	Standoff float64
	// SpeedMPS is the vehicle speed in m/s (default 2, a slow cart).
	SpeedMPS float64
	// HeightOffset is the radar-vs-tag-center height mismatch in meters.
	HeightOffset float64
	// Fog selects the weather (FogClear, FogLight, FogHeavy).
	Fog FogLevel
	// TrackingError is the vehicle's relative self-tracking drift
	// (e.g. 0.02 for 2 percent).
	TrackingError float64
	// WithClutter surrounds the tag with typical roadside objects.
	WithClutter bool
	// Seed drives all randomness; equal seeds reproduce reads exactly —
	// byte-identically, at any Workers setting or GOMAXPROCS.
	Seed int64
	// Workers caps the worker pool of the per-frame radar loop; 0 uses
	// GOMAXPROCS. The result does not depend on it.
	Workers int
	// Fault enables deterministic fault injection for chaos testing (nil
	// injects nothing); see FaultOptions. A read with Fault nil is
	// byte-identical to one from a build without the fault layer.
	Fault *FaultOptions
	// DisableIncrementalScan makes every per-frame point-cloud scan walk
	// all range bins instead of seeding candidates from the previous
	// frame's detections. The read is byte-identical either way (the
	// incremental scan is exact); this exists for A/B verification and
	// perf forensics.
	DisableIncrementalScan bool
}

// FaultOptions configures deterministic fault injection inside a read: each
// rate is a per-frame probability, decided purely by (Seed, frame index) on
// a stream independent of the physics randomness. Reads degrade gracefully —
// dropped or corrupted frames become gaps in the decoder's aggregate — until
// more than half the frames are lost, at which point the read fails with
// ErrFrameCorrupt.
type FaultOptions struct {
	// Seed drives the fault decisions (independent of ReadOptions.Seed).
	Seed int64
	// FrameDropRate loses whole frames; CorruptRate overwrites samples with
	// NaN/Inf (scrubbed before the FFT); BurstRate adds finite burst noise;
	// PanicRate panics the frame's worker (recovered, counted, degraded);
	// DelayRate stalls frames by Delay (default 1 ms).
	FrameDropRate, CorruptRate, BurstRate, PanicRate, DelayRate float64
	// Delay is the injected per-frame latency when DelayRate fires.
	Delay time.Duration
}

// FogLevel re-exports the weather conditions of Fig 16c.
type FogLevel = em.FogLevel

// Fog levels.
const (
	FogClear = em.FogClear
	FogLight = em.FogLight
	FogHeavy = em.FogHeavy
)

// Reading is the outcome of one drive-by.
type Reading struct {
	// Detected tells whether the tag was found and classified among the
	// roadside objects.
	Detected bool
	// Bits is the decoded bit string.
	Bits string
	// SNRdB is the decoding SNR of Sec 7.1.
	SNRdB float64
	// BER is the implied on-off-keying bit error rate.
	BER float64
	// RSSLossDB is the tag's polarization-loss feature (Fig 13a).
	RSSLossDB float64
	// MedianRSSdBm is the tag's median received signal strength.
	MedianRSSdBm float64
	// Stats counts the work behind the read (frames synthesized, FFT
	// calls, per-stage time).
	Stats ReadStats
	// Partial marks a read cut short by cancellation or excess frame loss;
	// the accompanying error matches ErrReadCancelled or ErrFrameCorrupt.
	Partial bool
	// FlightSeq is the read's sequence number in the flight recorder
	// (served at /debug/flight; dumped by rosbench -flight), or -1 when the
	// recorder's sampling policy skipped this read.
	FlightSeq int64

	// capture holds the raw (u, RSS) samples backing the read, for
	// SaveCapture.
	capture *trace.Capture
}

// ReadStats counts the signal-processing work behind one read. Stage times
// for the parallel frame loop are summed across workers; Wall is the
// end-to-end duration.
type ReadStats struct {
	// Frames is the number of radar frames synthesized.
	Frames int
	// FFTCalls is the number of fast-time FFTs run.
	FFTCalls int64
	// Workers is the resolved frame-loop worker count.
	Workers int
	// Synthesize, RangeFFT, PointCloud, Cluster, Spotlight and Decode are
	// the per-stage durations; Wall is the whole read.
	Synthesize, RangeFFT, PointCloud, Cluster, Spotlight, Decode, Wall time.Duration
	// FramesCompleted and FramesDropped count frame poses that produced
	// usable data and poses lost to faults; SamplesScrubbed counts
	// non-finite samples repaired before the range transform. All zero on
	// a clean, fault-free read except FramesCompleted.
	FramesCompleted, FramesDropped, SamplesScrubbed int
}

// SaveCapture archives the read's raw RCS samples as JSON, decodable later
// with cmd/rosdecode or Decode. It fails when the read detected no tag.
func (r *Reading) SaveCapture(path, note string) error {
	if r.capture == nil {
		return fmt.Errorf("ros: %w: reading has no capture", ErrNoTag)
	}
	c := *r.capture
	c.Note = note
	return trace.Save(path, &c)
}

// Read simulates a drive-by past the tag and decodes it end to end: FMCW
// frame synthesis, point-cloud detection, clustering, polarization
// classification, RCS sampling, and spectral decoding.
func (r *Reader) Read(t *Tag, opts ReadOptions) (*Reading, error) {
	return r.ReadContext(context.Background(), t, opts)
}

// ReadContext is Read under a context. Cancellation is cooperative at frame
// and stage boundaries: when ctx is cancelled or its deadline expires the
// read returns promptly with a partial Reading (Partial set, frame counters
// in Stats) and an error matching both ErrReadCancelled and the context
// cause (errors.Is(err, context.DeadlineExceeded) etc.). Frames completed
// before the cut are byte-identical to the ones a full run would produce.
func (r *Reader) ReadContext(ctx context.Context, t *Tag, opts ReadOptions) (*Reading, error) {
	if t == nil {
		return nil, fmt.Errorf("ros: %w: nil tag", roserr.ErrConfig)
	}
	cfg := sim.DriveBy{
		Bits:          t.bits,
		StackModules:  t.modules,
		BeamShaped:    t.shaped,
		Standoff:      opts.Standoff,
		Speed:         opts.SpeedMPS,
		HeightOffset:  opts.HeightOffset,
		Fog:           opts.Fog,
		TrackingError: opts.TrackingError,
		WithClutter:   opts.WithClutter,
		Seed:          opts.Seed,
		Workers:       opts.Workers,
		Radar:         &r.radar,
		Engine:        r.engine,

		DisableIncrementalScan: opts.DisableIncrementalScan,
	}
	if f := opts.Fault; f != nil {
		cfg.Fault = &fault.Config{
			Seed:          f.Seed,
			FrameDropRate: f.FrameDropRate,
			CorruptRate:   f.CorruptRate,
			BurstRate:     f.BurstRate,
			PanicRate:     f.PanicRate,
			DelayRate:     f.DelayRate,
			Delay:         f.Delay,
		}
	}
	out, err := sim.RunContext(ctx, cfg)
	if err != nil && out == nil {
		obs.Logger().Error("ros: read failed", "seed", opts.Seed, "err", err)
		return nil, err
	}
	reading := &Reading{
		Detected:     out.Detected,
		Bits:         out.Bits,
		SNRdB:        out.SNRdB,
		BER:          out.BER,
		RSSLossDB:    out.RSSLossDB,
		MedianRSSdBm: out.MedianRSSdBm,
		Partial:      out.Partial,
		FlightSeq:    out.FlightSeq,
		Stats: ReadStats{
			FramesCompleted: out.FramesCompleted,
			FramesDropped:   out.FramesDropped,
			SamplesScrubbed: out.SamplesScrubbed,
			Frames:          out.Stats.Frames,
			FFTCalls:        out.Stats.FFTCalls,
			Workers:         out.Stats.Workers,
			Synthesize:      time.Duration(out.Stats.SynthesizeNS),
			RangeFFT:        time.Duration(out.Stats.RangeFFTNS),
			PointCloud:      time.Duration(out.Stats.PointCloudNS),
			Cluster:         time.Duration(out.Stats.ClusterNS),
			Spotlight:       time.Duration(out.Stats.SpotlightNS),
			Decode:          time.Duration(out.Stats.DecodeNS),
			Wall:            time.Duration(out.Stats.WallNS),
		},
	}
	if err != nil {
		// Partial read: return what completed alongside the typed error so
		// callers can both inspect the Reading and branch on errors.Is.
		obs.Logger().Warn("ros: partial read", "seed", opts.Seed,
			"frames_completed", reading.Stats.FramesCompleted, "err", err)
		if out.Detection != nil {
			out.Detection.Span = nil
		}
		out.Span.Release()
		out.Span = nil
		return reading, err
	}
	if out.Detected && len(out.Detection.TagU) >= 8 {
		reading.capture = &trace.Capture{
			Version:      trace.CurrentVersion,
			Bits:         len(t.bits),
			DeltaMeters:  t.layout.Delta,
			LambdaMeters: r.radar.Wavelength(),
			U:            out.Detection.TagU,
			RSS:          out.Detection.TagRSS,
			Range:        out.Detection.TagRange,
		}
	} else if out.Detected {
		// A detected tag with under 8 RCS samples silently produced a
		// Reading without a capture before the obs layer; say so.
		obs.Logger().Info("ros: too few RCS samples to archive a capture",
			"samples", len(out.Detection.TagU), "seed", opts.Seed)
	}
	obs.Logger().Debug("ros: read complete",
		"detected", reading.Detected, "bits", reading.Bits,
		"snr_db", reading.SNRdB, "wall", reading.Stats.Wall)
	// The Reading exposes the flat ReadStats view only, so the span tree
	// can go back to the pool; drop the Detection's alias into it first.
	out.Detection.Span = nil
	out.Span.Release()
	out.Span = nil
	return reading, nil
}
